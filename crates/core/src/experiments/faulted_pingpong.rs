//! Rendezvous ping-pong under injected faults — the robustness demo.
//!
//! Not a paper figure: the paper measures healthy clusters. This driver
//! exercises the fault-injection subsystem end to end. A rendezvous-sized
//! ping-pong runs while CTS control messages are dropped with increasing
//! probability; each lost CTS costs the sender one retransmission timeout,
//! so latency inflates and the per-send profiler records the retry work.
//!
//! Each sweep point itself runs through the crash-proof runner
//! ([`crate::runner`]) — the campaign engine's own per-point guard nests
//! around it. In the demo point, one repetition's first attempt
//! deliberately panics (it must recover on a retry seed) and one
//! repetition runs under a total CTS black-out (it must fail cleanly after
//! exhausting retransmissions, without hanging, while the surviving
//! repetitions still produce the median/decile bands).

use mpisim::pingpong::{self, PingPongConfig};
use mpisim::Cluster;
use simcore::{FaultPlan, JitterFamily, Series, SimTime, Summary};
use topology::henri;

use super::Fidelity;
use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::protocol::{build_cluster, ProtocolConfig};
use crate::report::{Check, FigureData, RunOutcome};
use crate::runner::{self, RunStatus};

/// Rendezvous-sized message: far above henri's 64 KiB eager threshold, so
/// every send performs the RTS/CTS handshake the faults target.
const MSG_SIZE: usize = 256 * 1024;

/// Simulated-time ceiling per repetition: orders of magnitude above any
/// plausible completion, but finite, so a pathological schedule trips the
/// engine's budget watchdog instead of hanging the campaign.
const REP_BUDGET: SimTime = SimTime(2 * SimTime::SEC.0);

/// Repetition index whose first attempt panics (recovery demo).
const CRASH_REP: u32 = 1;
/// Repetition index that runs under a total CTS black-out (failure demo).
const BLACKOUT_REP: u32 = 2;

/// CTS drop probabilities of the sweep.
const PROBS: [f64; 3] = [0.0, 0.15, 0.35];

/// Measurements of one successful repetition.
struct RepOutcome {
    lat_us: f64,
    retries: u64,
    retrans_bytes: u64,
    retry_wait_s: f64,
}

fn pingpong_cfg(fidelity: Fidelity) -> PingPongConfig {
    PingPongConfig {
        size: MSG_SIZE,
        reps: fidelity.lat_reps().max(6),
        warmup: 1,
        mtag: 0xFA,
    }
}

/// One repetition: fresh cluster, injected plan, profiled ping-pong.
fn run_rep(
    pp: PingPongConfig,
    plan: &FaultPlan,
    seed: u64,
    rep: u64,
) -> Result<RepOutcome, mpisim::ClusterError> {
    let proto = ProtocolConfig::new(henri(), None);
    let family = JitterFamily::new(seed);
    let mut cluster: Cluster = build_cluster(&proto, &family, rep);
    cluster.apply_faults(plan)?;
    cluster.set_time_budget(Some(REP_BUDGET));
    cluster.enable_profiling();
    let res = pingpong::try_run(&mut cluster, pp)?;
    let mut out = RepOutcome {
        lat_us: res.median_latency_us(),
        retries: 0,
        retrans_bytes: 0,
        retry_wait_s: 0.0,
    };
    for rec in cluster.send_profile() {
        out.retries += rec.retries as u64;
        out.retrans_bytes += rec.retrans_bytes;
        out.retry_wait_s += rec.retry_wait.as_secs_f64();
    }
    Ok(out)
}

/// Inner-campaign result of one drop-probability sweep point.
struct SweepOut {
    lats: Vec<f64>,
    rets: Vec<f64>,
    failures: usize,
}

/// Inner-campaign result of the crash/black-out demo point.
struct DemoOut {
    lats: Vec<f64>,
    recovered: bool,
    crash_status: &'static str,
    crash_attempts: u32,
    blackout_failed: bool,
    partial: bool,
    runs: Vec<RunOutcome>,
}

/// Map a persisted status label back to the `&'static str` the runner
/// hands out (see [`RunStatus::label`]); unknown labels mean a stale or
/// corrupt entry.
fn intern_status(s: &str) -> Option<&'static str> {
    ["ok", "recovered", "failed", "timeout"]
        .into_iter()
        .find(|l| *l == s)
}

/// Registry driver for the faulted ping-pong (3 drop-probability sweep
/// points plus the crash/black-out demo point).
pub struct FaultedPingpong;

impl Experiment for FaultedPingpong {
    fn name(&self) -> &'static str {
        "faulted_pingpong"
    }

    fn anchor(&self) -> &'static str {
        "robustness extension (fault injection)"
    }

    fn plan(&self, _fidelity: Fidelity) -> Vec<SweepPoint> {
        let mut plan: Vec<SweepPoint> = PROBS
            .iter()
            .enumerate()
            .map(|(i, p)| SweepPoint::new(i, format!("CTS drop p = {}", p)))
            .collect();
        plan.push(SweepPoint::new(PROBS.len(), "crash/black-out demo"));
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let pp = pingpong_cfg(ctx.fidelity);
        let reps = ctx.fidelity.reps().max(4);
        if point.index < PROBS.len() {
            let p = PROBS[point.index];
            let base = FaultPlan::new(ctx.seed).with_cts_drop(p);
            let inner = runner::run_campaign(reps, ctx.seed, |rep, seed| {
                let plan = FaultPlan { seed, ..base.clone() };
                run_rep(pp, &plan, seed, rep as u64)
            });
            Ok(Box::new(SweepOut {
                lats: inner.values.iter().map(|(_, v)| v.lat_us).collect(),
                rets: inner.values.iter().map(|(_, v)| v.retries as f64).collect(),
                failures: inner.failed(),
            }))
        } else {
            let demo_plan = FaultPlan::new(ctx.seed).with_cts_drop(0.25);
            let blackout_plan = FaultPlan::new(ctx.seed).with_cts_drop(1.0);
            let mut crash_attempts = 0u32;
            let demo = runner::run_campaign(reps, ctx.seed, |rep, seed| {
                if rep == CRASH_REP {
                    crash_attempts += 1;
                    if crash_attempts == 1 {
                        panic!("injected crash: first attempt of rep {}", rep);
                    }
                }
                let base = if rep == BLACKOUT_REP { &blackout_plan } else { &demo_plan };
                let plan = FaultPlan { seed, ..base.clone() };
                run_rep(pp, &plan, seed, rep as u64)
            });

            // Enrich the per-rep outcomes with the retry work of the reps
            // that produced data.
            let mut runs = demo.outcomes();
            for (rep, v) in &demo.values {
                let r = &mut runs[*rep as usize];
                r.retries = v.retries;
                r.retrans_bytes = v.retrans_bytes;
                r.retry_wait_s = v.retry_wait_s;
            }
            Ok(Box::new(DemoOut {
                lats: demo.values.iter().map(|(_, v)| v.lat_us).collect(),
                recovered: matches!(
                    demo.records[CRASH_REP as usize].status,
                    RunStatus::Recovered { .. }
                ),
                crash_status: demo.records[CRASH_REP as usize].status.label(),
                crash_attempts,
                blackout_failed: matches!(
                    demo.records[BLACKOUT_REP as usize].status,
                    RunStatus::Failed { .. }
                ),
                partial: demo.is_partial(),
                runs,
            }))
        }
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let mut e = Enc::new();
        if let Some(p) = value.downcast_ref::<SweepOut>() {
            e.u8(0).f64s(&p.lats).f64s(&p.rets).usize(p.failures);
        } else if let Some(p) = value.downcast_ref::<DemoOut>() {
            e.u8(1)
                .f64s(&p.lats)
                .bool(p.recovered)
                .str(p.crash_status)
                .u32(p.crash_attempts)
                .bool(p.blackout_failed)
                .bool(p.partial)
                .usize(p.runs.len());
            for r in &p.runs {
                e.u32(r.rep)
                    .u64(r.seed)
                    .str(r.status)
                    .opt_str(&r.error)
                    .u64(r.retries)
                    .u64(r.retrans_bytes)
                    .f64(r.retry_wait_s);
            }
        } else {
            return None;
        }
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        match d.u8()? {
            0 => {
                let p = SweepOut { lats: d.f64s()?, rets: d.f64s()?, failures: d.usize()? };
                d.finish(Box::new(p) as PointValue)
            }
            1 => {
                let lats = d.f64s()?;
                let recovered = d.bool()?;
                let crash_status = intern_status(&d.str()?)?;
                let crash_attempts = d.u32()?;
                let blackout_failed = d.bool()?;
                let partial = d.bool()?;
                let n = d.usize()?;
                let mut runs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    runs.push(RunOutcome {
                        rep: d.u32()?,
                        seed: d.u64()?,
                        status: intern_status(&d.str()?)?,
                        error: d.opt_str()?,
                        retries: d.u64()?,
                        retrans_bytes: d.u64()?,
                        retry_wait_s: d.f64()?,
                    });
                }
                let p = DemoOut {
                    lats,
                    recovered,
                    crash_status,
                    crash_attempts,
                    blackout_failed,
                    partial,
                    runs,
                };
                d.finish(Box::new(p) as PointValue)
            }
            _ => None,
        }
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let reps = fidelity.reps().max(4);
        let mut lat = Series::new("latency");
        let mut retries_series = Series::new("retries per rep");
        let mut sweep_failures = 0usize;
        let mut retries_at = Vec::new();
        let mut lat_at = Vec::new();
        for (pi, &p) in PROBS.iter().enumerate() {
            let sweep = expect_value::<SweepOut>(points, pi);
            sweep_failures += sweep.failures;
            lat.push(p, &sweep.lats);
            retries_series.push(p, &sweep.rets);
            lat_at.push(Summary::of(&sweep.lats).median);
            retries_at.push(Summary::of(&sweep.rets).median);
        }

        let demo = expect_value::<DemoOut>(points, PROBS.len());
        let bands = Summary::of(&demo.lats);

        let checks = vec![
            Check::new(
                "healthy plan needs no retries",
                retries_at[0] == 0.0 && sweep_failures == 0,
                format!(
                    "median retries {} at p=0, {} failed sweep rep(s)",
                    retries_at[0], sweep_failures
                ),
            ),
            Check::new(
                "retry work grows with drop probability",
                retries_at[2] > retries_at[1] && retries_at[1] > 0.0,
                format!(
                    "median retries/rep {} / {} / {} at p = 0 / 0.15 / 0.35",
                    retries_at[0], retries_at[1], retries_at[2]
                ),
            ),
            Check::new(
                "dropped CTSes inflate latency",
                lat_at[2] > lat_at[0],
                format!("{:.1} µs at p=0.35 vs {:.1} µs healthy", lat_at[2], lat_at[0]),
            ),
            Check::new(
                "crashed rep recovers on a fresh seed",
                demo.recovered && demo.crash_attempts == 2,
                format!(
                    "rep {} status {:?} after {} attempt(s)",
                    CRASH_REP, demo.crash_status, demo.crash_attempts
                ),
            ),
            Check::new(
                "black-out rep fails cleanly, bands from survivors",
                demo.blackout_failed && demo.partial && bands.n == (reps as usize - 1),
                format!(
                    "{} of {} reps survived, median {:.1} µs [{:.1}, {:.1}]",
                    bands.n, reps, bands.median, bands.d1, bands.d9
                ),
            ),
        ];

        vec![FigureData {
            id: "faulted_pingpong",
            title: format!(
                "Rendezvous ping-pong ({} KiB) under injected CTS drops (henri)",
                MSG_SIZE / 1024
            ),
            xlabel: "CTS drop probability",
            ylabel: "latency (us)",
            series: vec![lat, retries_series],
            notes: vec![
                "robustness extension, not a paper figure: each dropped clear-to-send costs the \
                 sender one retransmission timeout (exponential backoff from 16x wire latency)"
                    .into(),
                format!(
                    "crash-proof campaign: rep {} panics once and recovers on a retry seed; rep {} \
                     runs a total CTS black-out and is reported as a partial result",
                    CRASH_REP, BLACKOUT_REP
                ),
            ],
            checks,
            runs: demo.runs.clone(),
        }]
    }
}

/// Run the faulted ping-pong figure.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&FaultedPingpong, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_pingpong_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 2);
        assert!(f.is_partial(), "black-out rep must surface as partial");
        // Statuses cover all three outcomes.
        let statuses: Vec<&str> = f.runs.iter().map(|r| r.status).collect();
        assert!(statuses.contains(&"ok"));
        assert!(statuses.contains(&"recovered"));
        assert!(statuses.contains(&"failed"));
        // The failed rep carries its error text into the export.
        let failed = f.runs.iter().find(|r| r.status == "failed").unwrap();
        assert!(
            failed.error.as_deref().unwrap().contains("retransmissions"),
            "{:?}",
            failed.error
        );
        // JSON export surfaces the retries.
        let json = crate::results::figure_to_json(&f);
        assert!(json.contains("\"runs\":[{\"rep\":0"));
        assert!(json.contains("\"status\":\"recovered\""));
        assert!(json.contains("\"status\":\"failed\""));
    }

    #[test]
    fn empty_plan_matches_healthy_run() {
        // A rep with an empty fault plan must be byte-identical to the same
        // seed without any fault machinery engaged.
        let pp = pingpong_cfg(Fidelity::Quick);
        let healthy = {
            let proto = ProtocolConfig::new(henri(), None);
            let family = JitterFamily::new(7);
            let mut cluster = build_cluster(&proto, &family, 0);
            pingpong::run(&mut cluster, pp).median_latency_us()
        };
        let injected = run_rep(pp, &FaultPlan::new(7), 7, 0).unwrap();
        assert_eq!(healthy, injected.lat_us);
        assert_eq!(injected.retries, 0);
    }
}
