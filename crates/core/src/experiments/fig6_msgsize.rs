//! Figure 6 — impact of the transmitted message size on memory contention
//! (§4.4), with 5 and with 35 computing cores.
//!
//! The paper's findings: with 5 computing cores, communications degrade
//! from ~64 KiB (the DMA path starts fighting for the controller) while
//! STREAM is impacted from ~4 KiB; with 35 cores the communications degrade
//! from far smaller messages (~128 B).

use kernels::stream::{workload, StreamKernel};
use mpisim::pingpong::PingPongConfig;
use simcore::Series;
use topology::{henri, Placement};

use crate::experiments::fig4_contention::STREAM_ELEMS;
use crate::experiments::{size_sweep, Fidelity};
use crate::paper;
use crate::protocol::{self, ProtocolConfig};
use crate::report::{Check, FigureData};

/// Sweep message sizes at a fixed computing-core count. Returns
/// (comm ratio series, stream ratio series): together ÷ alone per size —
/// 1.0 means unimpacted.
pub fn ratio_sweep(cores: usize, fidelity: Fidelity, seed: u64) -> (Series, Series) {
    let machine = henri();
    let placement = Placement::fig4_default();
    let data = machine.near_numa();
    let sizes = fidelity.thin(&size_sweep());

    let mut comm = Series::new(format!("comm speed ratio (together/alone), {} cores", cores));
    let mut stream = Series::new(format!(
        "STREAM BW ratio (together/alone), {} cores",
        cores
    ));
    for &size in &sizes {
        let w = workload(StreamKernel::Triad, STREAM_ELEMS, data, 1);
        let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
        cfg.placement = placement;
        cfg.compute_cores = cores;
        cfg.pingpong = PingPongConfig {
            size,
            reps: if size >= 1 << 20 {
                fidelity.bw_reps()
            } else {
                fidelity.lat_reps()
            },
            warmup: 1,
            mtag: 4,
        };
        cfg.reps = fidelity.reps();
        cfg.seed = seed + size as u64;
        let r = protocol::run(&cfg);
        // Speed ratio: alone-latency / together-latency (≤ 1 when hurt).
        let ratios: Vec<f64> = r
            .comm_alone
            .iter()
            .zip(&r.together)
            .map(|(a, t)| a.comm_latency_us / t.comm_latency_us)
            .collect();
        comm.push(size as f64, &ratios);
        let sratios: Vec<f64> = r
            .compute_alone
            .iter()
            .zip(&r.together)
            .map(|(a, t)| t.compute_bw_per_core / a.compute_bw_per_core)
            .collect();
        stream.push(size as f64, &sratios);
    }
    (comm, stream)
}

/// First size at which the ratio drops below `1 - rel`.
fn onset(series: &Series, rel: f64) -> Option<f64> {
    series
        .points
        .iter()
        .find(|p| p.y.median < 1.0 - rel)
        .map(|p| p.x)
}

/// Run Figure 6 (returns `[fig6a 5 cores, fig6b 35 cores]`).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    let (comm5, stream5) = ratio_sweep(5, fidelity, 0xF16_6A);
    let (comm35, stream35) = ratio_sweep(35, fidelity, 0xF16_6B);

    let comm5_onset = onset(&comm5, 0.10);
    let stream5_onset = onset(&stream5, 0.05);
    let comm35_onset = onset(&comm35, 0.10);

    let checks_a = vec![
        Check::new(
            "with 5 cores, small-message communication is unimpacted",
            comm5.points[0].y.median > 0.95,
            format!("4 B speed ratio {:.2}", comm5.points[0].y.median),
        ),
        Check::new(
            "with 5 cores, any communication impact is confined to large messages",
            comm5_onset.map(|x| x >= 16.0 * 1024.0).unwrap_or(true),
            format!("comm 10 %-onset at {:?} B (paper: 64 KiB)", comm5_onset),
        ),
        Check::new(
            "with 5 cores, STREAM is impacted once messages are large (paper: from 4 KiB)",
            stream5_onset.is_some()
                && stream5
                    .points
                    .last()
                    .map(|p| p.y.median < 0.95)
                    .unwrap_or(false),
            format!(
                "STREAM onset at {:?} B; 64 MiB ratio {:.2}",
                stream5_onset,
                stream5.points.last().map(|p| p.y.median).unwrap_or(f64::NAN)
            ),
        ),
    ];
    let checks_b = vec![
        Check::new(
            "with 35 cores, communications degrade from much smaller messages",
            match (comm35_onset, comm5_onset) {
                (Some(x35), Some(x5)) => x35 < x5,
                (Some(_), None) => true,
                _ => false,
            },
            format!("onset 35 cores: {:?} B vs 5 cores: {:?} B", comm35_onset, comm5_onset),
        ),
        Check::new(
            "with 35 cores, large-message communication is heavily degraded",
            comm35
                .points
                .last()
                .map(|p| p.y.median < 0.6)
                .unwrap_or(false),
            format!(
                "64 MiB speed ratio {:.2}",
                comm35.points.last().map(|p| p.y.median).unwrap_or(f64::NAN)
            ),
        ),
    ];

    vec![
        FigureData {
            id: "fig6a",
            title: "Impact of message size with 5 computing cores (henri)".into(),
            xlabel: "message size (B)",
            ylabel: "speed ratio (together/alone)",
            series: vec![comm5, stream5],
            notes: vec![format!(
                "paper: comm degraded from {} B, STREAM from {} B",
                paper::FIG6_5CORES_COMM_ONSET,
                paper::FIG6_5CORES_STREAM_ONSET
            )],
            checks: checks_a,
            runs: Vec::new(),
        },
        FigureData {
            id: "fig6b",
            title: "Impact of message size with 35 computing cores (henri)".into(),
            xlabel: "message size (B)",
            ylabel: "speed ratio (together/alone)",
            series: vec![comm35, stream35],
            notes: vec![format!(
                "paper: comm degraded from {} B, STREAM from ~4 KiB",
                paper::FIG6_35CORES_COMM_ONSET
            )],
            checks: checks_b,
            runs: Vec::new(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_quick_runs() {
        // Quick fidelity thins the size sweep to the endpoints, so onsets
        // are coarse; only assert that the sweep produces sane ratios.
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for s in &f.series {
                for p in &s.points {
                    assert!(
                        p.y.median > 0.01 && p.y.median < 1.6,
                        "{}: implausible ratio {} at {}",
                        f.id,
                        p.y.median,
                        p.x
                    );
                }
            }
        }
        // The strongest effect must still show: 35-core large-message comm
        // heavily degraded.
        let last = figs[1].series[0].points.last().unwrap().y.median;
        assert!(last < 0.7, "large-message ratio {}", last);
    }
}
