//! Figure 6 — impact of the transmitted message size on memory contention
//! (§4.4), with 5 and with 35 computing cores.
//!
//! The paper's findings: with 5 computing cores, communications degrade
//! from ~64 KiB (the DMA path starts fighting for the controller) while
//! STREAM is impacted from ~4 KiB; with 35 cores the communications degrade
//! from far smaller messages (~128 B).

use kernels::stream::{workload, StreamKernel};
use mpisim::pingpong::PingPongConfig;
use simcore::Series;
use topology::{henri, Placement};

use super::contention::STREAM_ELEMS;
use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::{size_sweep, Fidelity};
use crate::paper;
use crate::protocol::{self, ProtocolConfig};
use crate::report::{Check, FigureData};

/// The two computing-core counts of Figures 6a/6b.
const CORE_COUNTS: [usize; 2] = [5, 35];

fn sizes(fidelity: Fidelity) -> Vec<usize> {
    fidelity.thin(&size_sweep())
}

/// Per-rep speed ratios (together ÷ alone) of one (cores, size) point.
struct Fig6Point {
    comm_ratios: Vec<f64>,
    stream_ratios: Vec<f64>,
}

/// Registry driver for Figure 6 (sweep: {5, 35} cores × message sizes).
pub struct Fig6;

impl Experiment for Fig6 {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn anchor(&self) -> &'static str {
        "§4.4, Figures 6a/6b"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let sizes = sizes(fidelity);
        let mut plan = Vec::new();
        for (gi, &cores) in CORE_COUNTS.iter().enumerate() {
            for (si, &size) in sizes.iter().enumerate() {
                plan.push(SweepPoint::new(
                    gi * sizes.len() + si,
                    format!("{} cores @ {} B", cores, size),
                ));
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let sizes = sizes(ctx.fidelity);
        let cores = CORE_COUNTS[point.index / sizes.len()];
        let size = sizes[point.index % sizes.len()];
        let machine = henri();
        let w = workload(StreamKernel::Triad, STREAM_ELEMS, machine.near_numa(), 1);
        let mut cfg = ProtocolConfig::new(machine, Some(w));
        cfg.placement = Placement::fig4_default();
        cfg.compute_cores = cores;
        cfg.pingpong = PingPongConfig {
            size,
            reps: if size >= 1 << 20 {
                ctx.fidelity.bw_reps()
            } else {
                ctx.fidelity.lat_reps()
            },
            warmup: 1,
            mtag: 4,
        };
        cfg.reps = ctx.fidelity.reps();
        cfg.seed = ctx.seed;
        let r = protocol::try_run(&cfg).map_err(|e| e.to_string())?;
        // Speed ratio: alone-latency / together-latency (≤ 1 when hurt).
        // Ratios pair alone and together measurements of the same rep so
        // jitter cancels; both steps come from the same protocol run.
        let comm_ratios: Vec<f64> = r
            .comm_alone
            .iter()
            .zip(&r.together)
            .map(|(a, t)| a.comm_latency_us / t.comm_latency_us)
            .collect();
        let stream_ratios: Vec<f64> = r
            .compute_alone
            .iter()
            .zip(&r.together)
            .map(|(a, t)| t.compute_bw_per_core / a.compute_bw_per_core)
            .collect();
        Ok(Box::new(Fig6Point {
            comm_ratios,
            stream_ratios,
        }))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let p = value.downcast_ref::<Fig6Point>()?;
        let mut e = Enc::new();
        e.f64s(&p.comm_ratios).f64s(&p.stream_ratios);
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        let p = Fig6Point { comm_ratios: d.f64s()?, stream_ratios: d.f64s()? };
        d.finish(Box::new(p) as PointValue)
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let sizes = sizes(fidelity);
        let mut sweeps = Vec::new();
        for (gi, &cores) in CORE_COUNTS.iter().enumerate() {
            let mut comm = Series::new(format!(
                "comm speed ratio (together/alone), {} cores",
                cores
            ));
            let mut stream = Series::new(format!(
                "STREAM BW ratio (together/alone), {} cores",
                cores
            ));
            for (si, &size) in sizes.iter().enumerate() {
                let p = expect_value::<Fig6Point>(points, gi * sizes.len() + si);
                comm.push(size as f64, &p.comm_ratios);
                stream.push(size as f64, &p.stream_ratios);
            }
            sweeps.push((comm, stream));
        }
        let (comm35, stream35) = sweeps.pop().expect("two sweeps");
        let (comm5, stream5) = sweeps.pop().expect("two sweeps");

        let comm5_onset = onset(&comm5, 0.10);
        let stream5_onset = onset(&stream5, 0.05);
        let comm35_onset = onset(&comm35, 0.10);

        let checks_a = vec![
            Check::new(
                "with 5 cores, small-message communication is unimpacted",
                comm5.points[0].y.median > 0.95,
                format!("4 B speed ratio {:.2}", comm5.points[0].y.median),
            ),
            Check::new(
                "with 5 cores, any communication impact is confined to large messages",
                comm5_onset.map(|x| x >= 16.0 * 1024.0).unwrap_or(true),
                format!("comm 10 %-onset at {:?} B (paper: 64 KiB)", comm5_onset),
            ),
            Check::new(
                "with 5 cores, STREAM is impacted once messages are large (paper: from 4 KiB)",
                stream5_onset.is_some()
                    && stream5
                        .points
                        .last()
                        .map(|p| p.y.median < 0.95)
                        .unwrap_or(false),
                format!(
                    "STREAM onset at {:?} B; 64 MiB ratio {:.2}",
                    stream5_onset,
                    stream5.points.last().map(|p| p.y.median).unwrap_or(f64::NAN)
                ),
            ),
        ];
        let checks_b = vec![
            Check::new(
                "with 35 cores, communications degrade from much smaller messages",
                match (comm35_onset, comm5_onset) {
                    (Some(x35), Some(x5)) => x35 < x5,
                    (Some(_), None) => true,
                    _ => false,
                },
                format!(
                    "onset 35 cores: {:?} B vs 5 cores: {:?} B",
                    comm35_onset, comm5_onset
                ),
            ),
            Check::new(
                "with 35 cores, large-message communication is heavily degraded",
                comm35
                    .points
                    .last()
                    .map(|p| p.y.median < 0.6)
                    .unwrap_or(false),
                format!(
                    "64 MiB speed ratio {:.2}",
                    comm35.points.last().map(|p| p.y.median).unwrap_or(f64::NAN)
                ),
            ),
        ];

        vec![
            FigureData {
                id: "fig6a",
                title: "Impact of message size with 5 computing cores (henri)".into(),
                xlabel: "message size (B)",
                ylabel: "speed ratio (together/alone)",
                series: vec![comm5, stream5],
                notes: vec![format!(
                    "paper: comm degraded from {} B, STREAM from {} B",
                    paper::FIG6_5CORES_COMM_ONSET,
                    paper::FIG6_5CORES_STREAM_ONSET
                )],
                checks: checks_a,
                runs: Vec::new(),
            },
            FigureData {
                id: "fig6b",
                title: "Impact of message size with 35 computing cores (henri)".into(),
                xlabel: "message size (B)",
                ylabel: "speed ratio (together/alone)",
                series: vec![comm35, stream35],
                notes: vec![format!(
                    "paper: comm degraded from {} B, STREAM from ~4 KiB",
                    paper::FIG6_35CORES_COMM_ONSET
                )],
                checks: checks_b,
                runs: Vec::new(),
            },
        ]
    }
}

/// First size at which the ratio drops below `1 - rel`.
fn onset(series: &Series, rel: f64) -> Option<f64> {
    series
        .points
        .iter()
        .find(|p| p.y.median < 1.0 - rel)
        .map(|p| p.x)
}

/// Run Figure 6 (returns `[fig6a 5 cores, fig6b 35 cores]`).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    campaign::run_experiment(&Fig6, &campaign::CampaignOptions::serial(fidelity)).figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_quick_runs() {
        // Quick fidelity thins the size sweep to the endpoints, so onsets
        // are coarse; only assert that the sweep produces sane ratios.
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for s in &f.series {
                for p in &s.points {
                    assert!(
                        p.y.median > 0.01 && p.y.median < 1.6,
                        "{}: implausible ratio {} at {}",
                        f.id,
                        p.y.median,
                        p.x
                    );
                }
            }
        }
        // The strongest effect must still show: 35-core large-message comm
        // heavily degraded.
        let last = figs[1].series[0].points.last().unwrap().y.median;
        assert!(last < 0.7, "large-message ratio {}", last);
    }
}
