//! Figure 4 — memory-bound computations (STREAM) vs network performance
//! as a function of the number of computing cores (§4.2).
//!
//! Placement (the paper's default for this figure): computation and
//! communication data on the NUMA node of the NIC, communication thread on
//! the far socket. Memory is allocated on a single NUMA node to maximize
//! bus traffic; computing threads bind in logical core order.
//!
//! The measurements live in [`super::contention`] and are memoized in the
//! campaign cache, so Figure 5 and Table 1 (which sweep the same
//! placement) reuse them instead of re-running the protocol.

use topology::Placement;

pub use super::contention::{core_sweep, STREAM_ELEMS};
use super::contention::{measure, series_for, ContentionPoint, Metric};
use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::experiments::Fidelity;
use crate::paper;
use crate::report::{Check, FigureData};

/// Figure 4's placement label (one of the four Table 1 combos).
const PLACEMENT_LABEL: &str = "data near, thread far";

const METRICS: [Metric; 2] = [Metric::Latency, Metric::Bandwidth];

fn cores(fidelity: Fidelity) -> Vec<usize> {
    let machine = topology::henri();
    fidelity.thin(&core_sweep(machine.core_count() as usize - 1))
}

/// Registry driver for Figure 4 (sweep: {latency, bandwidth} × core counts).
pub struct Fig4;

impl Experiment for Fig4 {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn anchor(&self) -> &'static str {
        "§4.2, Figures 4a/4b"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let cores = cores(fidelity);
        let mut plan = Vec::new();
        for (mi, m) in METRICS.iter().enumerate() {
            for (ci, &n) in cores.iter().enumerate() {
                plan.push(SweepPoint::new(
                    mi * cores.len() + ci,
                    format!("{} @ {} cores", m.tag(), n),
                ));
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let cores = cores(ctx.fidelity);
        let metric = METRICS[point.index / cores.len()];
        let n = cores[point.index % cores.len()];
        let machine = topology::henri();
        let p = measure(
            ctx,
            &machine,
            PLACEMENT_LABEL,
            Placement::fig4_default(),
            metric,
            n,
        )?;
        Ok(Box::new(p))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        Some(value.downcast_ref::<ContentionPoint>()?.encode())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        Some(Box::new(ContentionPoint::decode(bytes)?))
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let cores = cores(fidelity);
        let collect = |mi: usize| -> Vec<&ContentionPoint> {
            (0..cores.len())
                .map(|ci| expect_value::<ContentionPoint>(points, mi * cores.len() + ci))
                .collect()
        };
        let lat = series_for(Metric::Latency, &cores, &collect(0));
        let bw = series_for(Metric::Bandwidth, &cores, &collect(1));

        // ---- checks ----
        let lat_base = lat.comm_alone.points[0].y.median;
        let lat_full = lat.comm_together.points.last().expect("points").y.median;
        let lat_alone_full = lat.comm_alone.points.last().expect("points").y.median;
        let bw_base = bw.comm_alone.points[0].y.median;
        let bw_full = bw.comm_together.points.last().expect("points").y.median;
        let bw_loss = 1.0 - bw_full / bw_base;
        // STREAM impact from the big-message benchmark (worst case across the
        // sweep).
        let stream_worst_loss = bw
            .stream_alone
            .points
            .iter()
            .zip(&bw.stream_together.points)
            .map(|(a, t)| 1.0 - t.y.median / a.y.median)
            .fold(f64::MIN, f64::max);
        // STREAM must be untouched by the latency benchmark.
        let stream_lat_loss = lat
            .stream_alone
            .points
            .iter()
            .zip(&lat.stream_together.points)
            .map(|(a, t)| 1.0 - t.y.median / a.y.median)
            .fold(f64::MIN, f64::max);

        let checks_a = vec![
            Check::new(
                "latency roughly doubles at full STREAM occupancy (paper: ×2)",
                lat_full > lat_alone_full * 1.5,
                format!(
                    "together {:.2} µs vs alone {:.2} µs (×{:.2})",
                    lat_full,
                    lat_alone_full,
                    lat_full / lat_alone_full
                ),
            ),
            Check::new(
                "latency unaffected at low core counts",
                {
                    let early = &lat.comm_together.points[0];
                    early.y.median < lat_base * 1.25
                },
                format!(
                    "1 core: {:.2} µs vs baseline {:.2} µs",
                    lat.comm_together.points[0].y.median, lat_base
                ),
            ),
            Check::new(
                "STREAM not impacted by the latency ping-pong",
                stream_lat_loss < 0.05,
                format!("worst STREAM loss {:.1} %", stream_lat_loss * 100.0),
            ),
        ];
        let checks_b = vec![
            Check::new(
                "bandwidth loses ≥ half at full occupancy (paper: ~2/3)",
                bw_loss > 0.5,
                format!(
                    "{:.2} → {:.2} GB/s ({:.0} % loss)",
                    bw_base / 1e9,
                    bw_full / 1e9,
                    bw_loss * 100.0
                ),
            ),
            Check::new(
                "bandwidth degradation starts early in the sweep (paper: from 3 cores)",
                bw.comm_together
                    .onset_x(bw_base, 0.10)
                    .map(|x| x <= 15.0)
                    .unwrap_or(false),
                format!(
                    "10 % onset at {:?} computing cores",
                    bw.comm_together.onset_x(bw_base, 0.10)
                ),
            ),
            Check::new(
                "STREAM loses up to ~25 % beside the bandwidth benchmark",
                stream_worst_loss > 0.08 && stream_worst_loss < 0.5,
                format!("worst STREAM loss {:.1} %", stream_worst_loss * 100.0),
            ),
        ];

        vec![
            FigureData {
                id: "fig4a",
                title: "STREAM vs network latency by computing-core count (henri)".into(),
                xlabel: "computing cores",
                ylabel: "us / B/s",
                series: vec![
                    lat.comm_alone,
                    lat.comm_together,
                    lat.stream_alone,
                    lat.stream_together,
                ],
                notes: vec![format!(
                    "paper: impacted from ~{} cores, up to ×{}",
                    paper::FIG4_LATENCY_ONSET_CORES,
                    paper::FIG4_LATENCY_FACTOR
                )],
                checks: checks_a,
                runs: Vec::new(),
            },
            FigureData {
                id: "fig4b",
                title: "STREAM vs network bandwidth by computing-core count (henri)".into(),
                xlabel: "computing cores",
                ylabel: "B/s",
                series: vec![
                    bw.comm_alone,
                    bw.comm_together,
                    bw.stream_alone,
                    bw.stream_together,
                ],
                notes: vec![format!(
                    "paper: impacted from ~{} cores; loses ~{:.0} % at full occupancy; STREAM loses ≤ {:.0} %",
                    paper::FIG4_BW_ONSET_CORES,
                    paper::FIG4_BW_LOSS_AT_FULL * 100.0,
                    paper::FIG4_STREAM_WORST_LOSS * 100.0
                )],
                checks: checks_b,
                runs: Vec::new(),
            },
        ]
    }
}

/// Run Figure 4 (returns `[fig4a latency, fig4b bandwidth]`).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    campaign::run_experiment(&Fig4, &campaign::CampaignOptions::serial(fidelity)).figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_quick_passes_checks() {
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for c in &f.checks {
                assert!(c.pass, "{}: {} — {}", f.id, c.name, c.detail);
            }
        }
    }

    #[test]
    fn placement_label_matches_table1_row() {
        let combos = Placement::all_combinations();
        assert_eq!(combos[1].0, PLACEMENT_LABEL);
        assert_eq!(combos[1].1, Placement::fig4_default());
    }
}
