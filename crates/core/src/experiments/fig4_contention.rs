//! Figure 4 — memory-bound computations (STREAM) vs network performance
//! as a function of the number of computing cores (§4.2).
//!
//! Placement (the paper's default for this figure): computation and
//! communication data on the NUMA node of the NIC, communication thread on
//! the far socket. Memory is allocated on a single NUMA node to maximize
//! bus traffic; computing threads bind in logical core order.

use kernels::stream::{workload, StreamKernel};
use mpisim::pingpong::PingPongConfig;
use simcore::Series;
use topology::{MachineSpec, NumaId, Placement};

use crate::experiments::Fidelity;
use crate::paper;
use crate::protocol::{self, ProtocolConfig};
use crate::report::{Check, FigureData};

/// STREAM array length per pass (paper-style large arrays).
pub const STREAM_ELEMS: usize = 2_000_000;

/// Core-count sweep used by Figures 4 and 5.
pub fn core_sweep(max: usize) -> Vec<usize> {
    let mut v: Vec<usize> = vec![1, 2, 3, 5, 7, 9, 12, 15, 18, 21, 24, 27, 30, 33, 35];
    v.retain(|&c| c <= max);
    v
}

/// The four series of one contention plot.
pub struct ContentionSweep {
    /// Network metric alone (latency µs or bandwidth B/s).
    pub comm_alone: Series,
    /// Network metric beside STREAM.
    pub comm_together: Series,
    /// STREAM per-core bandwidth alone.
    pub stream_alone: Series,
    /// STREAM per-core bandwidth beside the ping-pong.
    pub stream_together: Series,
}

/// Run a STREAM-vs-ping-pong sweep over computing-core counts.
pub fn sweep(
    machine: &MachineSpec,
    placement: Placement,
    data_numa_for_stream: NumaId,
    pingpong: PingPongConfig,
    latency_metric: bool,
    fidelity: Fidelity,
    seed: u64,
) -> ContentionSweep {
    let cores = fidelity.thin(&core_sweep(machine.core_count() as usize - 1));
    let mut out = ContentionSweep {
        comm_alone: Series::new(if latency_metric {
            "latency alone (us)"
        } else {
            "bandwidth alone (B/s)"
        }),
        comm_together: Series::new(if latency_metric {
            "latency + STREAM (us)"
        } else {
            "bandwidth + STREAM (B/s)"
        }),
        stream_alone: Series::new("STREAM per-core BW alone (B/s)"),
        stream_together: Series::new("STREAM per-core BW + comm (B/s)"),
    };
    for &n in &cores {
        let w = workload(StreamKernel::Triad, STREAM_ELEMS, data_numa_for_stream, 1);
        let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
        cfg.placement = placement;
        cfg.compute_cores = n;
        cfg.pingpong = pingpong;
        cfg.reps = fidelity.reps();
        cfg.seed = seed + n as u64;
        let r = protocol::run(&cfg);
        if latency_metric {
            out.comm_alone.push(n as f64, &r.lat_alone());
            out.comm_together.push(n as f64, &r.lat_together());
        } else {
            out.comm_alone.push(n as f64, &r.bw_alone());
            out.comm_together.push(n as f64, &r.bw_together());
        }
        out.stream_alone.push(n as f64, &r.compute_bw_alone());
        out.stream_together
            .push(n as f64, &r.compute_bw_together());
    }
    out
}

/// Run Figure 4 (returns `[fig4a latency, fig4b bandwidth]`).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    let machine = topology::henri();
    let placement = Placement::fig4_default();
    let data = machine.near_numa();

    let lat = sweep(
        &machine,
        placement,
        data,
        PingPongConfig::latency(fidelity.lat_reps()),
        true,
        fidelity,
        0xF16_4A,
    );
    let bw = sweep(
        &machine,
        placement,
        data,
        PingPongConfig {
            size: 64 << 20,
            reps: fidelity.bw_reps(),
            warmup: 1,
            mtag: 2,
        },
        false,
        fidelity,
        0xF16_4B,
    );

    // ---- checks ----
    let lat_base = lat.comm_alone.points[0].y.median;
    let lat_full = lat.comm_together.points.last().expect("points").y.median;
    let lat_alone_full = lat.comm_alone.points.last().expect("points").y.median;
    let bw_base = bw.comm_alone.points[0].y.median;
    let bw_full = bw.comm_together.points.last().expect("points").y.median;
    let bw_loss = 1.0 - bw_full / bw_base;
    // STREAM impact from the big-message benchmark (worst case across the
    // sweep).
    let stream_worst_loss = bw
        .stream_alone
        .points
        .iter()
        .zip(&bw.stream_together.points)
        .map(|(a, t)| 1.0 - t.y.median / a.y.median)
        .fold(f64::MIN, f64::max);
    // STREAM must be untouched by the latency benchmark.
    let stream_lat_loss = lat
        .stream_alone
        .points
        .iter()
        .zip(&lat.stream_together.points)
        .map(|(a, t)| 1.0 - t.y.median / a.y.median)
        .fold(f64::MIN, f64::max);

    let checks_a = vec![
        Check::new(
            "latency roughly doubles at full STREAM occupancy (paper: ×2)",
            lat_full > lat_alone_full * 1.5,
            format!(
                "together {:.2} µs vs alone {:.2} µs (×{:.2})",
                lat_full,
                lat_alone_full,
                lat_full / lat_alone_full
            ),
        ),
        Check::new(
            "latency unaffected at low core counts",
            {
                let early = &lat.comm_together.points[0];
                early.y.median < lat_base * 1.25
            },
            format!(
                "1 core: {:.2} µs vs baseline {:.2} µs",
                lat.comm_together.points[0].y.median, lat_base
            ),
        ),
        Check::new(
            "STREAM not impacted by the latency ping-pong",
            stream_lat_loss < 0.05,
            format!("worst STREAM loss {:.1} %", stream_lat_loss * 100.0),
        ),
    ];
    let checks_b = vec![
        Check::new(
            "bandwidth loses ≥ half at full occupancy (paper: ~2/3)",
            bw_loss > 0.5,
            format!(
                "{:.2} → {:.2} GB/s ({:.0} % loss)",
                bw_base / 1e9,
                bw_full / 1e9,
                bw_loss * 100.0
            ),
        ),
        Check::new(
            "bandwidth degradation starts early in the sweep (paper: from 3 cores)",
            bw.comm_together
                .onset_x(bw_base, 0.10)
                .map(|x| x <= 15.0)
                .unwrap_or(false),
            format!(
                "10 % onset at {:?} computing cores",
                bw.comm_together.onset_x(bw_base, 0.10)
            ),
        ),
        Check::new(
            "STREAM loses up to ~25 % beside the bandwidth benchmark",
            stream_worst_loss > 0.08 && stream_worst_loss < 0.5,
            format!("worst STREAM loss {:.1} %", stream_worst_loss * 100.0),
        ),
    ];

    vec![
        FigureData {
            id: "fig4a",
            title: "STREAM vs network latency by computing-core count (henri)".into(),
            xlabel: "computing cores",
            ylabel: "us / B/s",
            series: vec![
                lat.comm_alone,
                lat.comm_together,
                lat.stream_alone,
                lat.stream_together,
            ],
            notes: vec![format!(
                "paper: impacted from ~{} cores, up to ×{}",
                paper::FIG4_LATENCY_ONSET_CORES,
                paper::FIG4_LATENCY_FACTOR
            )],
            checks: checks_a,
            runs: Vec::new(),
        },
        FigureData {
            id: "fig4b",
            title: "STREAM vs network bandwidth by computing-core count (henri)".into(),
            xlabel: "computing cores",
            ylabel: "B/s",
            series: vec![
                bw.comm_alone,
                bw.comm_together,
                bw.stream_alone,
                bw.stream_together,
            ],
            notes: vec![format!(
                "paper: impacted from ~{} cores; loses ~{:.0} % at full occupancy; STREAM loses ≤ {:.0} %",
                paper::FIG4_BW_ONSET_CORES,
                paper::FIG4_BW_LOSS_AT_FULL * 100.0,
                paper::FIG4_STREAM_WORST_LOSS * 100.0
            )],
            checks: checks_b,
            runs: Vec::new(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_quick_passes_checks() {
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for c in &f.checks {
                assert!(c.pass, "{}: {} — {}", f.id, c.name, c.detail);
            }
        }
    }

    #[test]
    fn core_sweep_respects_max() {
        assert!(core_sweep(35).contains(&35));
        assert!(!core_sweep(20).contains(&35));
    }
}
