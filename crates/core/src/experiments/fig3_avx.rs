//! Figure 3 — impact of AVX512 computations on frequencies and network
//! latency (§3.3), with turbo-boost.
//!
//! Weak scaling: every computing core executes the same amount of AVX512
//! work. With few cores the AVX512 turbo ladder allows 3.0 GHz (fast
//! compute); with 20 cores it drops to 2.3 GHz (longer compute). The
//! communication core holds ~2.5 GHz throughout, and latency is never
//! *worse* beside AVX computation.

use freq::{Governor, License, UncorePolicy};
use kernels::vecops;
use mpisim::pingpong::PingPongConfig;
use simcore::{Series, Summary};
use topology::{henri, BindingPolicy, CoreId, Placement};

use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::paper;
use crate::protocol::{self, ProtocolConfig};
use crate::report::{Check, FigureData};

/// Per-core AVX512 flops tuned so 4 cores take ≈135 ms at the 3.0 GHz
/// AVX512 ceiling (48 Gflop/s on henri).
const FLOPS_PER_CORE: f64 = 6.48e9;

/// Core-count sweep of Figure 3a.
fn core_sweep() -> Vec<usize> {
    vec![2, 4, 8, 12, 16, 20, 24, 28, 32]
}

fn cores(fidelity: Fidelity) -> Vec<usize> {
    fidelity.thin(&core_sweep())
}

/// One core-count point of the weak-scaling sweep.
struct SweepOut {
    times: Vec<f64>,
    lat_alone: Vec<f64>,
    lat_together: Vec<f64>,
}

/// One frequency snapshot: (computing-core GHz, communication-core GHz).
#[derive(Clone, Copy)]
struct SnapshotOut(f64, f64);

/// Registry driver for Figure 3 (weak-scaling sweep plus two frequency
/// snapshots).
pub struct Fig3;

impl Experiment for Fig3 {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn anchor(&self) -> &'static str {
        "§3.3, Figures 3a/3b/3c"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let cores = cores(fidelity);
        let mut plan: Vec<SweepPoint> = cores
            .iter()
            .enumerate()
            .map(|(i, &n)| SweepPoint::new(i, format!("{} AVX512 cores", n)))
            .collect();
        plan.push(SweepPoint::new(cores.len(), "freq snapshot, 4 cores"));
        plan.push(SweepPoint::new(cores.len() + 1, "freq snapshot, 20 cores"));
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let machine = henri();
        let cores = cores(ctx.fidelity);
        if point.index >= cores.len() {
            // Frequency snapshots with 4 and 20 AVX512 cores (Figures
            // 3b/3c). The governor model is deterministic, so a fixed
            // jitter family keeps the snapshot seed-independent.
            let n = if point.index == cores.len() { 4 } else { 20 };
            let cfg = ProtocolConfig::new(
                machine,
                Some(vecops::avx_workload(FLOPS_PER_CORE, License::Avx512, 1)),
            );
            let family = simcore::JitterFamily::new(7);
            let mut cluster = protocol::build_cluster(&cfg, &family, 0);
            let comm = cluster.comm_core[0];
            let cores = cluster.compute_cores();
            let mut jobs = Vec::new();
            for &c in &cores[..n] {
                let mut spec = vecops::avx_workload(FLOPS_PER_CORE, License::Avx512, 1).on_core(c);
                spec.iterations = u64::MAX / 2;
                jobs.push(cluster.start_job(0, spec));
            }
            let out = SnapshotOut(
                cluster.freqs[0].core_freq(CoreId(0)),
                cluster.freqs[0].core_freq(comm),
            );
            for j in jobs {
                cluster.stop_job(0, j);
            }
            return Ok(Box::new(out));
        }

        let n = cores[point.index];
        let workload = vecops::avx_workload(FLOPS_PER_CORE, License::Avx512, 1);
        let mut cfg = ProtocolConfig::new(machine, Some(workload));
        cfg.governor = Governor::Performance { turbo: true };
        cfg.uncore = UncorePolicy::Auto;
        cfg.placement = Placement {
            comm_thread: BindingPolicy::FarFromNic,
            data: BindingPolicy::NearNic,
        };
        cfg.compute_cores = n;
        cfg.pingpong = PingPongConfig::latency(ctx.fidelity.lat_reps());
        cfg.reps = ctx.fidelity.reps();
        cfg.seed = ctx.seed;
        let r = protocol::try_run(&cfg).map_err(|e| e.to_string())?;

        // Weak-scaling compute time: per-core flops / measured flop rate.
        let times: Vec<f64> = r
            .compute_alone
            .iter()
            .map(|m| FLOPS_PER_CORE / m.compute_flop_rate * 1e3)
            .collect();
        Ok(Box::new(SweepOut {
            times,
            lat_alone: r.lat_alone(),
            lat_together: r.lat_together(),
        }))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let mut e = Enc::new();
        if let Some(p) = value.downcast_ref::<SweepOut>() {
            e.u8(0).f64s(&p.times).f64s(&p.lat_alone).f64s(&p.lat_together);
        } else if let Some(p) = value.downcast_ref::<SnapshotOut>() {
            e.u8(1).f64(p.0).f64(p.1);
        } else {
            return None;
        }
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        match d.u8()? {
            0 => {
                let p = SweepOut {
                    times: d.f64s()?,
                    lat_alone: d.f64s()?,
                    lat_together: d.f64s()?,
                };
                d.finish(Box::new(p) as PointValue)
            }
            1 => {
                let p = SnapshotOut(d.f64()?, d.f64()?);
                d.finish(Box::new(p) as PointValue)
            }
            _ => None,
        }
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let cores = cores(fidelity);
        let mut s_time = Series::new("computation time (ms)");
        let mut s_lat_alone = Series::new("latency alone (us)");
        let mut s_lat_together = Series::new("latency beside AVX512 (us)");
        for (i, &n) in cores.iter().enumerate() {
            let p = expect_value::<SweepOut>(points, i);
            s_time.push(n as f64, &p.times);
            s_lat_alone.push(n as f64, &p.lat_alone);
            s_lat_together.push(n as f64, &p.lat_together);
        }
        let SnapshotOut(f4_compute, f4_comm) = *expect_value::<SnapshotOut>(points, cores.len());
        let SnapshotOut(f20_compute, f20_comm) =
            *expect_value::<SnapshotOut>(points, cores.len() + 1);

        let mut s_freq = Series::new("computing-core freq (GHz) at 4 / 20 cores");
        s_freq.push(4.0, &[f4_compute]);
        s_freq.push(20.0, &[f20_compute]);
        let mut s_freq_comm = Series::new("communication-core freq (GHz) at 4 / 20 cores");
        s_freq_comm.push(4.0, &[f4_comm]);
        s_freq_comm.push(20.0, &[f20_comm]);

        let first = s_time.points.first().expect("sweep non-empty").y.median;
        let last = s_time.points.last().expect("sweep non-empty").y.median;
        let lat_a: Vec<f64> = s_lat_alone.points.iter().map(|p| p.y.median).collect();
        let lat_t: Vec<f64> = s_lat_together.points.iter().map(|p| p.y.median).collect();
        let together_never_worse = lat_t
            .iter()
            .zip(&lat_a)
            .all(|(t, a)| *t <= *a * 1.05);

        let checks_a = vec![
            Check::new(
                "weak-scaling compute time grows with core count (paper: 135 → 210 ms)",
                last > first * 1.15,
                format!("{:.0} ms at few cores vs {:.0} ms at many", first, last),
            ),
            Check::new(
                "compute time at 4 cores near paper point (135 ms)",
                (100.0..180.0).contains(&s_time.median_at(4.0).unwrap_or(first)),
                format!("measured {:.0} ms", s_time.median_at(4.0).unwrap_or(first)),
            ),
            Check::new(
                "latency never degraded by AVX computation (slightly better)",
                together_never_worse,
                format!("alone {:?} vs together {:?} µs (medians)", lat_a, lat_t),
            ),
        ];
        let checks_bc = vec![
            Check::new(
                "4 AVX512 cores run at ~3.0 GHz",
                (f4_compute - paper::FIG3_F4_GHZ).abs() < 0.15,
                format!("measured {:.2} GHz", f4_compute),
            ),
            Check::new(
                "20 AVX512 cores run at ~2.3 GHz",
                (f20_compute - paper::FIG3_F20_GHZ).abs() < 0.15,
                format!("measured {:.2} GHz", f20_compute),
            ),
            Check::new(
                "communication core stable at ~2.5 GHz regardless of AVX load",
                (f4_comm - paper::FIG3_COMM_GHZ).abs() < 0.15
                    && (f20_comm - paper::FIG3_COMM_GHZ).abs() < 0.15,
                format!("measured {:.2} / {:.2} GHz", f4_comm, f20_comm),
            ),
        ];

        let lat_alone_med = Summary::of(&lat_a).median;
        let lat_tog_med = Summary::of(&lat_t).median;
        vec![
            FigureData {
                id: "fig3a",
                title: "AVX512 computation time and network latency vs computing cores (henri)"
                    .into(),
                xlabel: "computing cores",
                ylabel: "ms / us",
                series: vec![s_time, s_lat_alone, s_lat_together],
                notes: vec![format!(
                    "paper: latency {} µs beside AVX vs {} µs alone; here {:.2} vs {:.2}",
                    paper::FIG3_LAT_TOGETHER_US,
                    paper::FIG3_LAT_ALONE_US,
                    lat_tog_med,
                    lat_alone_med
                )],
                checks: checks_a,
                runs: Vec::new(),
            },
            FigureData {
                id: "fig3bc",
                title: "Frequencies with 4 vs 20 AVX512 computing cores (henri)".into(),
                xlabel: "computing cores",
                ylabel: "GHz",
                series: vec![s_freq, s_freq_comm],
                notes: vec![
                    "paper Fig 3b/3c: 3.0 GHz at 4 cores, 2.3 GHz at 20; comm core 2.5 GHz".into(),
                ],
                checks: checks_bc,
                runs: Vec::new(),
            },
        ]
    }
}

/// Run Figure 3 (returns `[fig3a, fig3bc]`).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    campaign::run_experiment(&Fig3, &campaign::CampaignOptions::serial(fidelity)).figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_quick_passes_checks() {
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for c in &f.checks {
                assert!(c.pass, "{}: {} — {}", f.id, c.name, c.detail);
            }
        }
    }
}
