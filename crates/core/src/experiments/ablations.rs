//! Ablations of the interference model's own design choices (the
//! DESIGN.md extensions): each ablation disables or sweeps one mechanism
//! and shows which measured effect it is responsible for.
//!
//! * **congestion latency model** — without the congestion-dependent
//!   control-path inflation, the Figure 4a latency curve goes flat: fluid
//!   bandwidth sharing alone cannot explain small-message latency under
//!   contention;
//! * **package-idle penalty** — without it, latency is no longer *better*
//!   beside computation (the §3.2/§3.3 counter-intuitive finding vanishes);
//! * **NIC DMA arbitration weight** — the Figure 4b bandwidth floor is set
//!   by how aggressively the NIC competes for the memory controller;
//! * **registration cache** — reusing ping-pong buffers (as the paper does,
//!   citing the pin-down cache) hides the rendezvous pinning cost.

use kernels::stream::{workload, StreamKernel};
use mpisim::pingpong::{self, PingPongConfig};
use simcore::{JitterFamily, Series, Summary};
use topology::{henri, MachineSpec, Placement};

use crate::campaign::{self, expect_value, point_seed, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::protocol::{self, ProtocolConfig};
use crate::report::{Check, FigureData};

/// NIC DMA arbitration weights swept by ablation 3.
const NIC_WEIGHTS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// A single scalar ablation measurement.
#[derive(Clone, Copy)]
struct Scalar(f64);

/// Registration-cache measurement: (first-use µs, cached µs).
#[derive(Clone, Copy)]
struct Registration(f64, f64);

/// Latency inflation at full STREAM occupancy for a machine variant.
fn latency_inflation(machine: &MachineSpec, fidelity: Fidelity, seed: u64) -> Result<f64, String> {
    let w = workload(StreamKernel::Triad, 2_000_000, machine.near_numa(), 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.placement = Placement::fig4_default();
    cfg.compute_cores = machine.core_count() as usize - 1;
    cfg.pingpong = PingPongConfig::latency(fidelity.lat_reps());
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    let r = protocol::try_run(&cfg).map_err(|e| e.to_string())?;
    Ok(Summary::of(&r.lat_together()).median / Summary::of(&r.lat_alone()).median)
}

/// Bandwidth retained at full STREAM occupancy for a machine variant.
fn bandwidth_retained(machine: &MachineSpec, fidelity: Fidelity, seed: u64) -> Result<f64, String> {
    let w = workload(StreamKernel::Triad, 2_000_000, machine.near_numa(), 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.placement = Placement::fig4_default();
    cfg.compute_cores = machine.core_count() as usize - 1;
    cfg.pingpong = PingPongConfig {
        size: 64 << 20,
        reps: fidelity.bw_reps(),
        warmup: 1,
        mtag: 11,
    };
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    let r = protocol::try_run(&cfg).map_err(|e| e.to_string())?;
    Ok(Summary::of(&r.bw_together()).median / Summary::of(&r.bw_alone()).median)
}

/// Latency-alone minus latency-together (µs) under the Fig 2 setup.
fn fig2_delta(machine: &MachineSpec, fidelity: Fidelity, seed: u64) -> Result<f64, String> {
    let w = kernels::primes::workload(0, 30_000, 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.compute_cores = 20;
    cfg.pingpong = PingPongConfig::latency(fidelity.lat_reps());
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    let r = protocol::try_run(&cfg).map_err(|e| e.to_string())?;
    Ok(Summary::of(&r.lat_alone()).median - Summary::of(&r.lat_together()).median)
}

/// First-use vs cached-buffer latency of a rendezvous-sized message, µs.
fn registration_effect(machine: &MachineSpec) -> Registration {
    let cfg = ProtocolConfig::new(machine.clone(), None);
    let family = JitterFamily::new(0xAB_4);
    let mut cluster = protocol::build_cluster(&cfg, &family, 0);
    // warmup 0: the first measured rep pays registration.
    let first = pingpong::run(
        &mut cluster,
        PingPongConfig {
            size: 4 << 20,
            reps: 1,
            warmup: 0,
            mtag: 12,
        },
    )
    .median_latency_us();
    let cached = pingpong::run(
        &mut cluster,
        PingPongConfig {
            size: 4 << 20,
            reps: 3,
            warmup: 0,
            mtag: 12,
        },
    )
    .median_latency_us();
    Registration(first, cached)
}

/// Registry driver for the model ablations (9 points: two on/off pairs, a
/// 4-value NIC-weight sweep and the registration-cache probe).
pub struct Ablations;

impl Experiment for Ablations {
    fn name(&self) -> &'static str {
        "ablations"
    }

    fn anchor(&self) -> &'static str {
        "DESIGN.md §6 model ablations"
    }

    fn plan(&self, _fidelity: Fidelity) -> Vec<SweepPoint> {
        let mut plan = vec![
            SweepPoint::new(0, "congestion model on"),
            SweepPoint::new(1, "congestion model off"),
            SweepPoint::new(2, "idle penalty on"),
            SweepPoint::new(3, "idle penalty off"),
        ];
        for (i, w) in NIC_WEIGHTS.iter().enumerate() {
            plan.push(SweepPoint::new(4 + i, format!("NIC DMA weight {}", w)));
        }
        plan.push(SweepPoint::new(8, "registration cache"));
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let base = henri();
        match point.index {
            // On/off pairs share the seed of the pair's first point so the
            // comparison stays paired (sampling noise cancels).
            0 | 1 => {
                let seed = point_seed(self.name(), 0);
                let machine = if point.index == 0 {
                    base
                } else {
                    let mut m = base.clone();
                    m.congestion_gain = 0.0;
                    m
                };
                Ok(Box::new(Scalar(latency_inflation(
                    &machine,
                    ctx.fidelity,
                    seed,
                )?)))
            }
            2 | 3 => {
                let seed = point_seed(self.name(), 2);
                let machine = if point.index == 2 {
                    base
                } else {
                    let mut m = base.clone();
                    m.idle_uncore_penalty_s = 0.0;
                    m
                };
                Ok(Box::new(Scalar(fig2_delta(&machine, ctx.fidelity, seed)?)))
            }
            4..=7 => {
                let mut m = base.clone();
                m.network.nic_dma_weight = NIC_WEIGHTS[point.index - 4];
                Ok(Box::new(Scalar(bandwidth_retained(
                    &m,
                    ctx.fidelity,
                    ctx.seed,
                )?)))
            }
            _ => Ok(Box::new(registration_effect(&base))),
        }
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let mut e = Enc::new();
        if let Some(p) = value.downcast_ref::<Scalar>() {
            e.u8(0).f64(p.0);
        } else if let Some(p) = value.downcast_ref::<Registration>() {
            e.u8(1).f64(p.0).f64(p.1);
        } else {
            return None;
        }
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        match d.u8()? {
            0 => {
                let p = Scalar(d.f64()?);
                d.finish(Box::new(p) as PointValue)
            }
            1 => {
                let p = Registration(d.f64()?, d.f64()?);
                d.finish(Box::new(p) as PointValue)
            }
            _ => None,
        }
    }

    fn finalize(&self, _fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let scalar = |i: usize| expect_value::<Scalar>(points, i).0;
        let infl_on = scalar(0);
        let infl_off = scalar(1);
        let delta_with = scalar(2);
        let delta_without = scalar(3);
        let retained: Vec<f64> = (4..8).map(scalar).collect();
        let Registration(first_us, cached_us) = *expect_value::<Registration>(points, 8);

        let mut s_weight = Series::new("bandwidth retained vs NIC DMA weight");
        for (i, w) in NIC_WEIGHTS.iter().enumerate() {
            s_weight.push(*w, &[retained[i]]);
        }
        let mut s_infl = Series::new("latency inflation: congestion model on/off");
        s_infl.push(0.0, &[infl_off]);
        s_infl.push(1.0, &[infl_on]);
        let mut s_idle = Series::new("latency delta alone-together (us): idle penalty on/off");
        s_idle.push(0.0, &[delta_without]);
        s_idle.push(1.0, &[delta_with]);
        let mut s_reg = Series::new("4 MiB send latency (us): first vs cached registration");
        s_reg.push(0.0, &[first_us]);
        s_reg.push(1.0, &[cached_us]);

        let checks = vec![
            Check::new(
                "congestion model is what inflates small-message latency",
                infl_on > 1.5 && infl_off < 1.2,
                format!(
                    "inflation ×{:.2} with model vs ×{:.2} without",
                    infl_on, infl_off
                ),
            ),
            Check::new(
                "idle penalty explains 'together beats alone'",
                delta_with > 0.05 && delta_without.abs() < 0.05,
                format!(
                    "alone-together delta {:.2} µs with penalty vs {:.2} µs without",
                    delta_with, delta_without
                ),
            ),
            Check::new(
                "NIC arbitration weight sets the bandwidth floor (monotone)",
                retained.windows(2).all(|w| w[1] >= w[0] - 1e-9)
                    && retained[3] > retained[0] * 1.5,
                format!("retained fractions {:?}", retained),
            ),
            Check::new(
                "registration cache hides the pinning cost on reuse",
                first_us > cached_us * 1.2,
                format!("first {:.0} µs vs cached {:.0} µs", first_us, cached_us),
            ),
        ];

        vec![FigureData {
            id: "ablations",
            title: "Model ablations: which mechanism produces which measured effect".into(),
            xlabel: "variant",
            ylabel: "ratio / us",
            series: vec![s_infl, s_idle, s_weight, s_reg],
            notes: vec![
                "these are ablations of the simulator's design choices (DESIGN.md §6), not paper figures"
                    .into(),
            ],
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run all ablations.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&Ablations, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_quick_pass_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 4);
    }
}
