//! Ablations of the interference model's own design choices (the
//! DESIGN.md extensions): each ablation disables or sweeps one mechanism
//! and shows which measured effect it is responsible for.
//!
//! * **congestion latency model** — without the congestion-dependent
//!   control-path inflation, the Figure 4a latency curve goes flat: fluid
//!   bandwidth sharing alone cannot explain small-message latency under
//!   contention;
//! * **package-idle penalty** — without it, latency is no longer *better*
//!   beside computation (the §3.2/§3.3 counter-intuitive finding vanishes);
//! * **NIC DMA arbitration weight** — the Figure 4b bandwidth floor is set
//!   by how aggressively the NIC competes for the memory controller;
//! * **registration cache** — reusing ping-pong buffers (as the paper does,
//!   citing the pin-down cache) hides the rendezvous pinning cost.

use kernels::stream::{workload, StreamKernel};
use mpisim::pingpong::{self, PingPongConfig};
use simcore::{JitterFamily, Series, Summary};
use topology::{henri, MachineSpec, Placement};

use crate::experiments::Fidelity;
use crate::protocol::{self, ProtocolConfig};
use crate::report::{Check, FigureData};

/// Latency inflation at full STREAM occupancy for a machine variant.
fn latency_inflation(machine: &MachineSpec, fidelity: Fidelity, seed: u64) -> f64 {
    let w = workload(StreamKernel::Triad, 2_000_000, machine.near_numa(), 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.placement = Placement::fig4_default();
    cfg.compute_cores = machine.core_count() as usize - 1;
    cfg.pingpong = PingPongConfig::latency(fidelity.lat_reps());
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    let r = protocol::run(&cfg);
    Summary::of(&r.lat_together()).median / Summary::of(&r.lat_alone()).median
}

/// Bandwidth retained at full STREAM occupancy for a machine variant.
fn bandwidth_retained(machine: &MachineSpec, fidelity: Fidelity, seed: u64) -> f64 {
    let w = workload(StreamKernel::Triad, 2_000_000, machine.near_numa(), 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.placement = Placement::fig4_default();
    cfg.compute_cores = machine.core_count() as usize - 1;
    cfg.pingpong = PingPongConfig {
        size: 64 << 20,
        reps: fidelity.bw_reps(),
        warmup: 1,
        mtag: 11,
    };
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    let r = protocol::run(&cfg);
    Summary::of(&r.bw_together()).median / Summary::of(&r.bw_alone()).median
}

/// Run all ablations.
pub fn run(fidelity: Fidelity) -> FigureData {
    let base = henri();

    // 1. Congestion model off.
    let mut no_congestion = base.clone();
    no_congestion.congestion_gain = 0.0;
    let infl_on = latency_inflation(&base, fidelity, 0xAB_1);
    let infl_off = latency_inflation(&no_congestion, fidelity, 0xAB_1);

    // 2. Idle penalty off: does "together beats alone" survive?
    let mut no_idle = base.clone();
    no_idle.idle_uncore_penalty_s = 0.0;
    let delta_with = fig2_delta(&base, fidelity, 0xAB_2);
    let delta_without = fig2_delta(&no_idle, fidelity, 0xAB_2);

    // 3. NIC weight sweep.
    let mut s_weight = Series::new("bandwidth retained vs NIC DMA weight");
    let mut retained = Vec::new();
    for (i, w) in [1.0f64, 2.0, 4.0, 8.0].into_iter().enumerate() {
        let mut m = base.clone();
        m.network.nic_dma_weight = w;
        let r = bandwidth_retained(&m, fidelity, 0xAB_3 + i as u64);
        s_weight.push(w, &[r]);
        retained.push(r);
    }

    // 4. Registration cache: first vs reused buffer at 4 MiB.
    let (first_us, cached_us) = registration_effect(&base);

    let mut s_infl = Series::new("latency inflation: congestion model on/off");
    s_infl.push(0.0, &[infl_off]);
    s_infl.push(1.0, &[infl_on]);
    let mut s_idle = Series::new("latency delta alone-together (us): idle penalty on/off");
    s_idle.push(0.0, &[delta_without]);
    s_idle.push(1.0, &[delta_with]);
    let mut s_reg = Series::new("4 MiB send latency (us): first vs cached registration");
    s_reg.push(0.0, &[first_us]);
    s_reg.push(1.0, &[cached_us]);

    let checks = vec![
        Check::new(
            "congestion model is what inflates small-message latency",
            infl_on > 1.5 && infl_off < 1.2,
            format!("inflation ×{:.2} with model vs ×{:.2} without", infl_on, infl_off),
        ),
        Check::new(
            "idle penalty explains 'together beats alone'",
            delta_with > 0.05 && delta_without.abs() < 0.05,
            format!(
                "alone-together delta {:.2} µs with penalty vs {:.2} µs without",
                delta_with, delta_without
            ),
        ),
        Check::new(
            "NIC arbitration weight sets the bandwidth floor (monotone)",
            retained.windows(2).all(|w| w[1] >= w[0] - 1e-9) && retained[3] > retained[0] * 1.5,
            format!("retained fractions {:?}", retained),
        ),
        Check::new(
            "registration cache hides the pinning cost on reuse",
            first_us > cached_us * 1.2,
            format!("first {:.0} µs vs cached {:.0} µs", first_us, cached_us),
        ),
    ];

    FigureData {
        id: "ablations",
        title: "Model ablations: which mechanism produces which measured effect".into(),
        xlabel: "variant",
        ylabel: "ratio / us",
        series: vec![s_infl, s_idle, s_weight, s_reg],
        notes: vec![
            "these are ablations of the simulator's design choices (DESIGN.md §6), not paper figures"
                .into(),
        ],
        checks,
        runs: Vec::new(),
    }
}

/// Latency-alone minus latency-together (µs) under the Fig 2 setup.
fn fig2_delta(machine: &MachineSpec, fidelity: Fidelity, seed: u64) -> f64 {
    let w = kernels::primes::workload(0, 30_000, 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.compute_cores = 20;
    cfg.pingpong = PingPongConfig::latency(fidelity.lat_reps());
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    let r = protocol::run(&cfg);
    Summary::of(&r.lat_alone()).median - Summary::of(&r.lat_together()).median
}

/// First-use vs cached-buffer latency of a rendezvous-sized message, µs.
fn registration_effect(machine: &MachineSpec) -> (f64, f64) {
    let cfg = ProtocolConfig::new(machine.clone(), None);
    let family = JitterFamily::new(0xAB_4);
    let mut cluster = protocol::build_cluster(&cfg, &family, 0);
    // warmup 0: the first measured rep pays registration.
    let first = pingpong::run(
        &mut cluster,
        PingPongConfig {
            size: 4 << 20,
            reps: 1,
            warmup: 0,
            mtag: 12,
        },
    )
    .median_latency_us();
    let cached = pingpong::run(
        &mut cluster,
        PingPongConfig {
            size: 4 << 20,
            reps: 3,
            warmup: 0,
            mtag: 12,
        },
    )
    .median_latency_us();
    (first, cached)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_quick_pass_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 4);
    }
}
