//! Communication/computation **overlap** benchmark — the companion
//! methodology of Denis & Trahay, "MPI Overlap: Benchmark and Analysis"
//! (ICPP 2016), which the paper cites as related work [7].
//!
//! Where the paper measures *interference* (how much each side degrades),
//! the overlap benchmark measures *progression*: issue a non-blocking
//! transfer, compute for roughly the transfer's duration, then wait.
//! Perfect overlap gives `T_total ≈ max(T_comm, T_comp)`; no overlap gives
//! `T_comm + T_comp`. The overlap ratio
//!
//! ```text
//! overlap = (T_comm + T_comp − T_total) / min(T_comm, T_comp)
//! ```
//!
//! is 1 for full overlap and 0 for none. Because our communication layer
//! has a dedicated progress thread (MadMPI-style), overlap is structurally
//! high for DMA transfers — *except* that memory contention between the
//! computation and the transfer stretches `T_total` beyond the ideal
//! maximum, which is exactly the coupling this repository is about.

use freq::License;
use kernels::single_phase;
use mpisim::ClusterEvent;
use simcore::{JitterFamily, Series};
use topology::{henri, NumaId};

use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::protocol::{build_cluster, ProtocolConfig};
use crate::report::{Check, FigureData};

/// The two computation profiles probed at every size: CPU-bound (AI 64)
/// and memory-bound (AI 0.1), both on 8 cores.
const PROFILES: [(&str, f64); 2] = [("cpu", 64.0), ("mem", 0.1)];
const CORES: usize = 8;

fn sizes(fidelity: Fidelity) -> Vec<usize> {
    fidelity.pick(&[64 << 10, 1 << 20, 8 << 20, 64 << 20], &[1 << 20, 64 << 20])
}

/// One overlap measurement: (T_comm, T_comp, T_total) in seconds.
#[derive(Clone, Copy)]
struct OverlapPoint(f64, f64, f64);

/// One overlap measurement. `cores` computing threads run the same
/// per-core workload (the paper's weak-scaling style); several memory-bound
/// cores are needed to saturate the controller the transfer also uses.
fn measure(size: usize, ai: f64, cores: usize, seed: u64) -> OverlapPoint {
    let machine = henri();
    let mk = || {
        let cfg = ProtocolConfig::new(machine.clone(), None);
        let family = JitterFamily::new(seed);
        build_cluster(&cfg, &family, 0)
    };

    // T_comm alone: one-way delivery (buffer pre-registered by a warmup).
    let t_comm = {
        let mut c = mk();
        for warm in 0..2 {
            let r = c.irecv(1, warm);
            c.isend(0, size, warm, 0x600);
            while !c.test_recv(r) {
                c.step().expect("progress");
            }
        }
        let t0 = c.engine.now();
        let r = c.irecv(1, 99);
        c.isend(0, size, 99, 0x600);
        while !c.test_recv(r) {
            c.step().expect("progress");
        }
        (c.engine.now() - t0).as_secs_f64()
    };

    // Computation sized to roughly T_comm on one core (memory workload at
    // the requested arithmetic intensity).
    let bytes = 12e9 * t_comm; // per-core bandwidth × T_comm
    let workload = single_phase("overlap", bytes * ai, bytes, NumaId(0), License::Normal, 1);
    let t_comp = {
        let mut c = mk();
        let avail = c.compute_cores();
        let t0 = c.engine.now();
        for &core in &avail[..cores] {
            c.start_job(0, workload.on_core(core));
        }
        let mut done = 0;
        while done < cores {
            if let ClusterEvent::JobDone { .. } = c.step().expect("progress") {
                done += 1;
            }
        }
        (c.engine.now() - t0).as_secs_f64()
    };

    // T_total: isend, compute, wait — on the same node.
    let t_total = {
        let mut c = mk();
        for warm in 0..2 {
            let r = c.irecv(1, warm);
            c.isend(0, size, warm, 0x600);
            while !c.test_recv(r) {
                c.step().expect("progress");
            }
        }
        let avail = c.compute_cores();
        let t0 = c.engine.now();
        let r = c.irecv(1, 99);
        c.isend(0, size, 99, 0x600);
        for &core in &avail[..cores] {
            c.start_job(0, workload.on_core(core));
        }
        let mut recv_done = false;
        let mut comp_done = 0;
        while !(recv_done && comp_done == cores) {
            match c.step().expect("progress") {
                ClusterEvent::RecvComplete(rr) if rr == r => recv_done = true,
                ClusterEvent::JobDone { .. } => comp_done += 1,
                _ => {}
            }
        }
        (c.engine.now() - t0).as_secs_f64()
    };
    OverlapPoint(t_comm, t_comp, t_total)
}

/// Overlap ratio from the three durations.
pub fn overlap_ratio(t_comm: f64, t_comp: f64, t_total: f64) -> f64 {
    let saved = (t_comm + t_comp - t_total).max(0.0);
    let max_savable = t_comm.min(t_comp);
    if max_savable <= 0.0 {
        0.0
    } else {
        (saved / max_savable).min(1.0)
    }
}

/// Registry driver for the overlap study (sweep: {cpu, mem} × sizes).
pub struct Overlap;

impl Experiment for Overlap {
    fn name(&self) -> &'static str {
        "overlap"
    }

    fn anchor(&self) -> &'static str {
        "related work [7] companion study"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let sizes = sizes(fidelity);
        let mut plan = Vec::new();
        for (ai_i, (tag, ai)) in PROFILES.iter().enumerate() {
            for (si, &size) in sizes.iter().enumerate() {
                plan.push(SweepPoint::new(
                    ai_i * sizes.len() + si,
                    format!("{} (AI {}) @ {} B", tag, ai, size),
                ));
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let sizes = sizes(ctx.fidelity);
        let (_, ai) = PROFILES[point.index / sizes.len()];
        let size = sizes[point.index % sizes.len()];
        Ok(Box::new(measure(size, ai, CORES, ctx.seed)))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let p = value.downcast_ref::<OverlapPoint>()?;
        let mut e = Enc::new();
        e.f64(p.0).f64(p.1).f64(p.2);
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        let p = OverlapPoint(d.f64()?, d.f64()?, d.f64()?);
        d.finish(Box::new(p) as PointValue)
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let sizes = sizes(fidelity);
        let mut s_cpu = Series::new("overlap ratio, CPU-bound computation (AI 64)");
        let mut s_mem = Series::new("overlap ratio, memory-bound computation (AI 0.1)");
        let mut s_stretch = Series::new("T_total / max(T_comm, T_comp), memory-bound");
        for (si, &size) in sizes.iter().enumerate() {
            let OverlapPoint(c1, p1, t1) = *expect_value::<OverlapPoint>(points, si);
            s_cpu.push(size as f64, &[overlap_ratio(c1, p1, t1)]);
            let OverlapPoint(c2, p2, t2) =
                *expect_value::<OverlapPoint>(points, sizes.len() + si);
            s_mem.push(size as f64, &[overlap_ratio(c2, p2, t2)]);
            s_stretch.push(size as f64, &[t2 / c2.max(p2)]);
        }

        let cpu_min = s_cpu
            .points
            .iter()
            .map(|p| p.y.median)
            .fold(f64::MAX, f64::min);
        let mem_last = s_mem.points.last().expect("points").y.median;
        let stretch_last = s_stretch.points.last().expect("points").y.median;
        let checks = vec![
            Check::new(
                "dedicated progress thread gives near-full overlap for CPU-bound compute",
                cpu_min > 0.8,
                format!("worst CPU-bound overlap ratio {:.2}", cpu_min),
            ),
            Check::new(
                "memory-bound compute still overlaps (progression is not the problem…)",
                mem_last > 0.5,
                format!("large-message overlap ratio {:.2}", mem_last),
            ),
            Check::new(
                "…but contention stretches the overlapped region beyond the ideal max",
                stretch_last > 1.02,
                format!("T_total / max = {:.2}", stretch_last),
            ),
        ];

        vec![FigureData {
            id: "overlap",
            title: "Comm/comp overlap (companion study, after Denis & Trahay [7])".into(),
            xlabel: "message size (B)",
            ylabel: "overlap ratio",
            series: vec![s_cpu, s_mem, s_stretch],
            notes: vec![
                "extension: not a figure of the reproduced paper; connects its interference \
                 results to the overlap methodology it cites as related work"
                    .into(),
            ],
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run the overlap study across message sizes and intensities.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&Overlap, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_bounds() {
        assert_eq!(overlap_ratio(1.0, 1.0, 2.0), 0.0);
        assert_eq!(overlap_ratio(1.0, 1.0, 1.0), 1.0);
        assert!(overlap_ratio(1.0, 2.0, 2.5) == 0.5);
        assert_eq!(overlap_ratio(0.0, 1.0, 1.0), 0.0);
    }

    #[test]
    fn overlap_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
    }
}
