//! Collective × DVFS extension — which collectives care about core
//! frequency?
//!
//! Figure 1 shows the paper's asymmetry for point-to-point traffic: eager
//! messages ride the communication core (PIO at ~4 B/cycle plus software
//! overhead in cycles), so their latency scales with core frequency, while
//! rendezvous messages ride the NIC's DMA engine and barely notice it.
//! This study lifts that asymmetry to collectives on the 8-rank switch
//! fabric: a 16 KiB binomial bcast (eager on henri, 64 KiB threshold)
//! against an 8 MiB ring allreduce (1 MiB chunks, rendezvous), swept over
//! the userspace core-frequency range with the uncore pinned at its
//! maximum so only the core clock moves.
//!
//! The world is pinned and jitter-free: a point's value is a pure function
//! of its configuration, so the campaign JSON is byte-identical at any
//! `--jobs` level (asserted by `tests/collective_equiv.rs`).

use freq::{Governor, UncorePolicy};
use std::sync::Arc;

use mpisim::collective::{self, Algorithm, Schedule};
use mpisim::Cluster;
use simcore::Series;
use topology::fabric::FabricPreset;
use topology::{henri, BindingPolicy, Placement};

use super::Fidelity;
use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::report::{Check, FigureData};

/// Rank count (matches the simcheck collective oracles).
const NODES: usize = 8;

/// Eager payload: well under henri's 64 KiB threshold.
const BCAST_SIZE: usize = 16 << 10;

/// Rendezvous payload: 1 MiB chunks after the ring's reduce-scatter split.
const ALLREDUCE_SIZE: usize = 8 << 20;

/// Core-frequency sweep (GHz); `Quick` keeps the endpoints the checks
/// compare.
fn freqs(fidelity: Fidelity) -> Vec<f64> {
    fidelity.pick(&[1.0, 1.5, 2.3], &[1.0, 2.3])
}

/// The two schedules, in plan order.
const ALGS: [&str; 2] = ["binomial bcast 16 KiB", "ring allreduce 8 MiB"];

fn schedule(alg: usize) -> Arc<Schedule> {
    match alg {
        0 => collective::cached(Algorithm::BinomialBcast, NODES, BCAST_SIZE),
        _ => collective::cached(Algorithm::RingAllreduce, NODES, ALLREDUCE_SIZE),
    }
}

/// Completion time (µs) of one schedule at one core frequency, on a
/// pinned, jitter-free 8-rank switch cluster.
fn measure(freq_ghz: f64, alg: usize) -> Result<f64, String> {
    let spec = henri();
    let mut c = Cluster::with_fabric(
        &spec,
        FabricPreset::Switch.spec(NODES).build_for(NODES),
        Governor::Userspace(freq_ghz),
        UncorePolicy::Fixed(spec.uncore_range.1),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    );
    let elapsed = collective::run(&mut c, &schedule(alg), 100, 0x8000).map_err(|e| e.to_string())?;
    Ok(elapsed.as_secs_f64() * 1e6)
}

/// One point: completion time in µs.
struct DvfsPoint(f64);

/// Registry driver for the collective × DVFS sweep.
pub struct CollectiveDvfs;

impl Experiment for CollectiveDvfs {
    fn name(&self) -> &'static str {
        "collective_dvfs"
    }

    fn anchor(&self) -> &'static str {
        "N-rank extension of §3.1/Figure 1 (collectives vs core frequency)"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let freqs = freqs(fidelity);
        let mut plan = Vec::new();
        for (ai, alg) in ALGS.iter().enumerate() {
            for (fi, f) in freqs.iter().enumerate() {
                plan.push(SweepPoint::new(
                    ai * freqs.len() + fi,
                    format!("{} @ {} GHz", alg, f),
                ));
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let freqs = freqs(ctx.fidelity);
        let alg = point.index / freqs.len();
        let f = freqs[point.index % freqs.len()];
        Ok(Box::new(DvfsPoint(measure(f, alg)?)))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let p = value.downcast_ref::<DvfsPoint>()?;
        let mut e = Enc::new();
        e.f64(p.0);
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        let p = DvfsPoint(d.f64()?);
        d.finish(Box::new(p) as PointValue)
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let freqs = freqs(fidelity);
        let mut series = Vec::new();
        // times[alg][freq index]
        let mut times = [Vec::new(), Vec::new()];
        for (ai, alg) in ALGS.iter().enumerate() {
            let mut s = Series::new(*alg);
            for (fi, &f) in freqs.iter().enumerate() {
                let t = expect_value::<DvfsPoint>(points, ai * freqs.len() + fi).0;
                s.push(f, &[t]);
                times[ai].push(t);
            }
            series.push(s);
        }
        let bcast_ratio = times[0][0] / *times[0].last().expect("non-empty sweep");
        let ring_ratio = times[1][0] / *times[1].last().expect("non-empty sweep");
        let bcast_monotone = times[0].windows(2).all(|w| w[0] >= w[1] * 0.999);

        let checks = vec![
            Check::new(
                "eager bcast slows substantially at low core frequency (PIO + cycle overheads)",
                bcast_ratio >= 1.3,
                format!(
                    "bcast t({} GHz) / t({} GHz) = {:.2}",
                    freqs[0],
                    freqs.last().expect("non-empty"),
                    bcast_ratio
                ),
            ),
            Check::new(
                "rendezvous ring allreduce barely notices core frequency (DMA path)",
                ring_ratio <= 1.15,
                format!("allreduce slowdown at min frequency only {:.3}x", ring_ratio),
            ),
            Check::new(
                "eager bcast time falls monotonically with core frequency",
                bcast_monotone,
                format!("times across the sweep: {:?} us", times[0]),
            ),
            Check::new(
                "frequency sensitivity is the eager path's, not the DMA path's",
                bcast_ratio > ring_ratio,
                format!("bcast ratio {:.2} vs allreduce ratio {:.2}", bcast_ratio, ring_ratio),
            ),
        ];

        vec![FigureData {
            id: "collective_dvfs",
            title: "Collective completion time vs core frequency (8 henri ranks, switch)".into(),
            xlabel: "core frequency (GHz)",
            ylabel: "collective completion time (us)",
            series,
            notes: vec![
                "extension of Figure 1's eager/rendezvous asymmetry to collectives: the \
                 eager binomial bcast pays PIO and software overhead in core cycles, the \
                 rendezvous ring allreduce rides the NIC DMA engine"
                    .into(),
                "uncore pinned at its maximum so only the core clock moves".into(),
            ],
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run the collective-DVFS study.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&CollectiveDvfs, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_dvfs_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].points.len(), 2, "Quick sweeps the two endpoint frequencies");
    }
}
