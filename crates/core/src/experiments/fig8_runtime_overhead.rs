//! Figure 8 — impact of data locality and thread placement on network
//! latency with the task runtime (§5.2, §5.3).
//!
//! Messages routed through the StarPU-like runtime pay a software-stack
//! overhead (+38 µs on henri, +23 µs on billy, +45 µs on pyxis) on top of
//! the raw MPI latency; additionally, the *co-location of the payload and
//! the communication thread* dominates the remaining variation ("close"
//! and "far" relative to the NIC).

use mpisim::pingpong::{self, PingPongConfig};
use simcore::{JitterFamily, Series, Summary};
use taskrt::{pingpong as rt_pingpong, Runtime, RuntimeConfig};
use topology::{BindingPolicy, Placement, Preset};

use crate::experiments::Fidelity;
use crate::paper;
use crate::protocol::{build_cluster, ProtocolConfig};
use crate::report::{Check, FigureData};

/// Latency through the runtime for one placement, plus the plain-MPI
/// baseline, medians over reps.
fn measure(
    machine: &topology::MachineSpec,
    placement: Placement,
    fidelity: Fidelity,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let mut rt_lat = Vec::new();
    let mut plain_lat = Vec::new();
    for rep in 0..fidelity.reps() {
        let mut cfg = ProtocolConfig::new(machine.clone(), None);
        cfg.placement = placement;
        cfg.seed = seed + rep as u64;
        let family = JitterFamily::new(cfg.seed);
        let mut cluster = build_cluster(&cfg, &family, rep as u64);
        let pp = PingPongConfig::latency(fidelity.lat_reps());
        plain_lat.push(pingpong::run(&mut cluster, pp).median_latency_us());
        let mut rt = Runtime::new(RuntimeConfig::for_machine(machine));
        rt_lat.push(rt_pingpong::run(&mut cluster, &mut rt, pp).median_latency_us());
    }
    (rt_lat, plain_lat)
}

/// Run Figure 8.
pub fn run(fidelity: Fidelity) -> FigureData {
    let machine = topology::henri();
    let combos = [
        ("data close, thread close", BindingPolicy::NearNic, BindingPolicy::NearNic),
        ("data close, thread far", BindingPolicy::NearNic, BindingPolicy::FarFromNic),
        ("data far, thread close", BindingPolicy::FarFromNic, BindingPolicy::NearNic),
        ("data far, thread far", BindingPolicy::FarFromNic, BindingPolicy::FarFromNic),
    ];
    let mut s_rt = Series::new("latency through StarPU-like runtime (us)");
    let mut s_plain = Series::new("plain MPI latency (us)");
    let mut medians = Vec::new();
    let mut notes = vec![format!(
        "paper overheads: henri +{} µs, billy +{} µs, pyxis +{} µs",
        paper::FIG8_OVERHEAD_HENRI_US,
        paper::FIG8_OVERHEAD_BILLY_US,
        paper::FIG8_OVERHEAD_PYXIS_US
    )];
    for (i, (label, data, thread)) in combos.iter().enumerate() {
        let placement = Placement {
            comm_thread: *thread,
            data: *data,
        };
        let (rt_lat, plain_lat) = measure(&machine, placement, fidelity, 0xF16_8 + i as u64);
        let rt_med = Summary::of(&rt_lat).median;
        let plain_med = Summary::of(&plain_lat).median;
        s_rt.push(i as f64, &rt_lat);
        s_plain.push(i as f64, &plain_lat);
        medians.push((label, rt_med, plain_med));
        notes.push(format!(
            "{}: runtime {:.1} µs vs plain {:.1} µs",
            label, rt_med, plain_med
        ));
    }

    // Cross-machine overheads (the §5.2 point values).
    let mut overhead_notes = Vec::new();
    let mut overhead_ok = true;
    for (preset, expect) in [
        (Preset::Henri, paper::FIG8_OVERHEAD_HENRI_US),
        (Preset::Billy, paper::FIG8_OVERHEAD_BILLY_US),
        (Preset::Pyxis, paper::FIG8_OVERHEAD_PYXIS_US),
    ] {
        let m = preset.spec();
        let placement = Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        };
        let (rt_lat, plain_lat) = measure(&m, placement, Fidelity::Quick, 0xF16_80);
        let overhead = Summary::of(&rt_lat).median - Summary::of(&plain_lat).median;
        overhead_ok &= (overhead - expect).abs() / expect < 0.4;
        overhead_notes.push(format!(
            "{}: measured overhead {:.1} µs (paper {:.0} µs)",
            m.name, overhead, expect
        ));
    }
    notes.extend(overhead_notes);

    let colocated_best = medians[0].1.min(medians[3].1);
    let split_worst = medians[1].1.max(medians[2].1);
    let henri_overhead = medians[0].1 - medians[0].2;
    let checks = vec![
        Check::new(
            "runtime adds paper-scale latency overhead on henri (+38 µs)",
            (paper::FIG8_OVERHEAD_HENRI_US * 0.6..paper::FIG8_OVERHEAD_HENRI_US * 1.4)
                .contains(&henri_overhead),
            format!("measured +{:.1} µs", henri_overhead),
        ),
        Check::new(
            "data/thread co-location matters most (same NUMA beats split)",
            colocated_best < split_worst,
            format!(
                "best co-located {:.1} µs vs worst split {:.1} µs",
                colocated_best, split_worst
            ),
        ),
        Check::new(
            "per-machine overheads track the paper (henri/billy/pyxis)",
            overhead_ok,
            "see notes for the three machines".to_string(),
        ),
    ];

    FigureData {
        id: "fig8",
        title: "Task-runtime latency overhead by data/thread placement".into(),
        xlabel: "placement (0 cc, 1 cf, 2 fc, 3 ff)",
        ylabel: "latency (us)",
        series: vec![s_rt, s_plain],
        notes,
        checks,
        runs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].points.len(), 4);
    }
}
