//! Figure 8 — impact of data locality and thread placement on network
//! latency with the task runtime (§5.2, §5.3).
//!
//! Messages routed through the StarPU-like runtime pay a software-stack
//! overhead (+38 µs on henri, +23 µs on billy, +45 µs on pyxis) on top of
//! the raw MPI latency; additionally, the *co-location of the payload and
//! the communication thread* dominates the remaining variation ("close"
//! and "far" relative to the NIC).

use mpisim::pingpong::{self, PingPongConfig};
use simcore::{JitterFamily, Series, Summary};
use taskrt::{pingpong as rt_pingpong, Runtime, RuntimeConfig};
use topology::{BindingPolicy, Placement, Preset};

use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::paper;
use crate::protocol::{build_cluster, ProtocolConfig};
use crate::report::{Check, FigureData};

const COMBOS: [(&str, BindingPolicy, BindingPolicy); 4] = [
    ("data close, thread close", BindingPolicy::NearNic, BindingPolicy::NearNic),
    ("data close, thread far", BindingPolicy::NearNic, BindingPolicy::FarFromNic),
    ("data far, thread close", BindingPolicy::FarFromNic, BindingPolicy::NearNic),
    ("data far, thread far", BindingPolicy::FarFromNic, BindingPolicy::FarFromNic),
];

const MACHINES: [(Preset, f64); 3] = [
    (Preset::Henri, paper::FIG8_OVERHEAD_HENRI_US),
    (Preset::Billy, paper::FIG8_OVERHEAD_BILLY_US),
    (Preset::Pyxis, paper::FIG8_OVERHEAD_PYXIS_US),
];

/// Runtime and plain-MPI latencies of one placement, one entry per rep.
struct Fig8Point {
    rt_lat: Vec<f64>,
    plain_lat: Vec<f64>,
}

/// Latency through the runtime for one placement, plus the plain-MPI
/// baseline.
fn measure(
    machine: &topology::MachineSpec,
    placement: Placement,
    fidelity: Fidelity,
    seed: u64,
) -> Fig8Point {
    let mut rt_lat = Vec::new();
    let mut plain_lat = Vec::new();
    for rep in 0..fidelity.reps() {
        let mut cfg = ProtocolConfig::new(machine.clone(), None);
        cfg.placement = placement;
        cfg.seed = seed.wrapping_add(rep as u64);
        let family = JitterFamily::new(cfg.seed);
        let mut cluster = build_cluster(&cfg, &family, rep as u64);
        let pp = PingPongConfig::latency(fidelity.lat_reps());
        plain_lat.push(pingpong::run(&mut cluster, pp).median_latency_us());
        let mut rt = Runtime::new(RuntimeConfig::for_machine(machine));
        rt_lat.push(rt_pingpong::run(&mut cluster, &mut rt, pp).median_latency_us());
    }
    Fig8Point { rt_lat, plain_lat }
}

/// Registry driver for Figure 8 (4 henri placements + 3 per-machine
/// overhead points).
pub struct Fig8;

impl Experiment for Fig8 {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn anchor(&self) -> &'static str {
        "§5.2/§5.3, Figure 8"
    }

    fn plan(&self, _fidelity: Fidelity) -> Vec<SweepPoint> {
        let mut plan: Vec<SweepPoint> = COMBOS
            .iter()
            .enumerate()
            .map(|(i, (label, _, _))| SweepPoint::new(i, *label))
            .collect();
        for (i, (preset, _)) in MACHINES.iter().enumerate() {
            plan.push(SweepPoint::new(
                COMBOS.len() + i,
                format!("overhead on {}", preset.spec().name),
            ));
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        if point.index < COMBOS.len() {
            let (_, data, thread) = COMBOS[point.index];
            let placement = Placement {
                comm_thread: thread,
                data,
            };
            let machine = topology::henri();
            Ok(Box::new(measure(&machine, placement, ctx.fidelity, ctx.seed)))
        } else {
            // Cross-machine overheads (the §5.2 point values); Quick
            // repetitions suffice for a point estimate on every fidelity.
            let (preset, _) = MACHINES[point.index - COMBOS.len()];
            let m = preset.spec();
            let placement = Placement {
                comm_thread: BindingPolicy::NearNic,
                data: BindingPolicy::NearNic,
            };
            Ok(Box::new(measure(&m, placement, Fidelity::Quick, ctx.seed)))
        }
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let p = value.downcast_ref::<Fig8Point>()?;
        let mut e = Enc::new();
        e.f64s(&p.rt_lat).f64s(&p.plain_lat);
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        let p = Fig8Point { rt_lat: d.f64s()?, plain_lat: d.f64s()? };
        d.finish(Box::new(p) as PointValue)
    }

    fn finalize(&self, _fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let mut s_rt = Series::new("latency through StarPU-like runtime (us)");
        let mut s_plain = Series::new("plain MPI latency (us)");
        let mut medians = Vec::new();
        let mut notes = vec![format!(
            "paper overheads: henri +{} µs, billy +{} µs, pyxis +{} µs",
            paper::FIG8_OVERHEAD_HENRI_US,
            paper::FIG8_OVERHEAD_BILLY_US,
            paper::FIG8_OVERHEAD_PYXIS_US
        )];
        for (i, (label, _, _)) in COMBOS.iter().enumerate() {
            let p = expect_value::<Fig8Point>(points, i);
            let rt_med = Summary::of(&p.rt_lat).median;
            let plain_med = Summary::of(&p.plain_lat).median;
            s_rt.push(i as f64, &p.rt_lat);
            s_plain.push(i as f64, &p.plain_lat);
            medians.push((label, rt_med, plain_med));
            notes.push(format!(
                "{}: runtime {:.1} µs vs plain {:.1} µs",
                label, rt_med, plain_med
            ));
        }

        let mut overhead_ok = true;
        for (i, (preset, expect)) in MACHINES.iter().enumerate() {
            let p = expect_value::<Fig8Point>(points, COMBOS.len() + i);
            let overhead = Summary::of(&p.rt_lat).median - Summary::of(&p.plain_lat).median;
            overhead_ok &= (overhead - expect).abs() / expect < 0.4;
            notes.push(format!(
                "{}: measured overhead {:.1} µs (paper {:.0} µs)",
                preset.spec().name,
                overhead,
                expect
            ));
        }

        let colocated_best = medians[0].1.min(medians[3].1);
        let split_worst = medians[1].1.max(medians[2].1);
        let henri_overhead = medians[0].1 - medians[0].2;
        let checks = vec![
            Check::new(
                "runtime adds paper-scale latency overhead on henri (+38 µs)",
                (paper::FIG8_OVERHEAD_HENRI_US * 0.6..paper::FIG8_OVERHEAD_HENRI_US * 1.4)
                    .contains(&henri_overhead),
                format!("measured +{:.1} µs", henri_overhead),
            ),
            Check::new(
                "data/thread co-location matters most (same NUMA beats split)",
                colocated_best < split_worst,
                format!(
                    "best co-located {:.1} µs vs worst split {:.1} µs",
                    colocated_best, split_worst
                ),
            ),
            Check::new(
                "per-machine overheads track the paper (henri/billy/pyxis)",
                overhead_ok,
                "see notes for the three machines".to_string(),
            ),
        ];

        vec![FigureData {
            id: "fig8",
            title: "Task-runtime latency overhead by data/thread placement".into(),
            xlabel: "placement (0 cc, 1 cf, 2 fc, 3 ff)",
            ylabel: "latency (us)",
            series: vec![s_rt, s_plain],
            notes,
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run Figure 8.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&Fig8, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].points.len(), 4);
    }
}
