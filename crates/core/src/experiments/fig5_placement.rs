//! Figure 5 — impact of communication-thread placement and data locality
//! on the contention curves (§4.3).
//!
//! The four near/far combinations of {data, communication thread} relative
//! to the NIC. Figure 4 is the (data near, thread far) case; this driver
//! sweeps all four and checks the Table 1 qualitative summary:
//!
//! * thread near → latency rises *slightly*, early (from ~6 cores);
//! * thread far → latency rises *highly*, late (from ~25 cores);
//! * data near → bandwidth decreases *steadily*;
//! * data far → bandwidth drops *abruptly*.
//!
//! All points come from [`super::contention::measure`] and are shared with
//! Figure 4 and Table 1 through the campaign cache.

use topology::{henri, Placement};

use super::contention::{core_sweep, measure, series_for, ContentionPoint, Metric};
use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::experiments::Fidelity;
use crate::paper;
use crate::report::{Check, FigureData};

const METRICS: [Metric; 2] = [Metric::Latency, Metric::Bandwidth];

fn cores(fidelity: Fidelity) -> Vec<usize> {
    fidelity.thin(&core_sweep(henri().core_count() as usize - 1))
}

/// The medians Figure 5's checks need from one placement.
struct PlacementStats {
    lat_base: f64,
    lat_full: f64,
    bw_base: f64,
    bw_full: f64,
}

/// Registry driver for Figure 5 (sweep: 4 placements × {lat, bw} × cores).
pub struct Fig5;

impl Experiment for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn anchor(&self) -> &'static str {
        "§4.3, Figure 5 / Table 1 curves"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let cores = cores(fidelity);
        let mut plan = Vec::new();
        for (pi, (label, _)) in Placement::all_combinations().into_iter().enumerate() {
            for (mi, m) in METRICS.iter().enumerate() {
                for (ci, &n) in cores.iter().enumerate() {
                    plan.push(SweepPoint::new(
                        (pi * METRICS.len() + mi) * cores.len() + ci,
                        format!("{}, {} @ {} cores", label, m.tag(), n),
                    ));
                }
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let cores = cores(ctx.fidelity);
        let combos = Placement::all_combinations();
        let pi = point.index / (METRICS.len() * cores.len());
        let mi = (point.index / cores.len()) % METRICS.len();
        let n = cores[point.index % cores.len()];
        let (label, placement) = combos[pi];
        let machine = henri();
        let p = measure(ctx, &machine, label, placement, METRICS[mi], n)?;
        Ok(Box::new(p))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        Some(value.downcast_ref::<ContentionPoint>()?.encode())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        Some(Box::new(ContentionPoint::decode(bytes)?))
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let cores = cores(fidelity);
        let combos = Placement::all_combinations();

        let mut lat_series = Vec::new();
        let mut bw_series = Vec::new();
        let mut stats = Vec::new();
        for (pi, (label, _)) in combos.iter().enumerate() {
            let collect = |mi: usize| -> Vec<&ContentionPoint> {
                (0..cores.len())
                    .map(|ci| {
                        expect_value::<ContentionPoint>(
                            points,
                            (pi * METRICS.len() + mi) * cores.len() + ci,
                        )
                    })
                    .collect()
            };
            let lat = series_for(Metric::Latency, &cores, &collect(0));
            let bw = series_for(Metric::Bandwidth, &cores, &collect(1));
            stats.push(PlacementStats {
                lat_base: lat.comm_alone.points[0].y.median,
                lat_full: lat.comm_together.points.last().expect("points").y.median,
                bw_base: bw.comm_alone.points[0].y.median,
                bw_full: bw.comm_together.points.last().expect("points").y.median,
            });
            let mut la = lat.comm_alone;
            la.name = format!("{} — alone", label);
            let mut lt = lat.comm_together;
            lt.name = format!("{} — + STREAM", label);
            lat_series.push(la);
            lat_series.push(lt);
            let mut ba = bw.comm_alone;
            ba.name = format!("{} — alone", label);
            let mut bt = bw.comm_together;
            bt.name = format!("{} — + STREAM", label);
            bw_series.push(ba);
            bw_series.push(bt);
        }

        // Index by (data, thread): 0 near/near, 1 near/far, 2 far/near, 3 far/far.
        let lat_full: Vec<f64> = stats.iter().map(|s| s.lat_full).collect();
        let lat_base: Vec<f64> = stats.iter().map(|s| s.lat_base).collect();
        let bw_full: Vec<f64> = stats.iter().map(|s| s.bw_full).collect();
        let bw_base: Vec<f64> = stats.iter().map(|s| s.bw_base).collect();

        // Thread near (rows 0, 2) vs far (rows 1, 3).
        let near_infl = (lat_full[0] / lat_base[0]).max(lat_full[2] / lat_base[2]);
        let far_infl = (lat_full[1] / lat_base[1]).min(lat_full[3] / lat_base[3]);
        // Data near (rows 0, 1) vs far (rows 2, 3): loss at full occupancy.
        let near_loss = (1.0 - bw_full[0] / bw_base[0]).max(1.0 - bw_full[1] / bw_base[1]);
        let far_loss = (1.0 - bw_full[2] / bw_base[2]).min(1.0 - bw_full[3] / bw_base[3]);

        let checks_lat = vec![
            Check::new(
                "far thread suffers more latency inflation than near thread",
                far_infl > near_infl,
                format!("far ×{:.2} vs near ×{:.2}", far_infl, near_infl),
            ),
            Check::new(
                "near-thread latency stays bounded (~2 µs in the paper)",
                lat_full[0] < 3.0,
                format!("near/near at full occupancy: {:.2} µs", lat_full[0]),
            ),
            Check::new(
                "baseline latency better near the NIC (paper: 1.39 vs 1.67 µs)",
                lat_base[0] < lat_base[1],
                format!("near {:.2} µs vs far {:.2} µs", lat_base[0], lat_base[1]),
            ),
        ];
        let checks_bw = vec![
            Check::new(
                "data far from the NIC loses more bandwidth than data near",
                far_loss > near_loss,
                format!(
                    "far {:.0} % vs near {:.0} %",
                    far_loss * 100.0,
                    near_loss * 100.0
                ),
            ),
            Check::new(
                "every placement loses bandwidth at full occupancy",
                bw_full.iter().zip(&bw_base).all(|(f, b)| f < b),
                format!(
                    "losses: {:?} %",
                    bw_full
                        .iter()
                        .zip(&bw_base)
                        .map(|(f, b)| ((1.0 - f / b) * 100.0).round())
                        .collect::<Vec<_>>()
                ),
            ),
        ];

        vec![
            FigureData {
                id: "fig5-lat",
                title: "Placement impact on network latency under contention (henri)".into(),
                xlabel: "computing cores",
                ylabel: "latency (us)",
                series: lat_series,
                notes: vec![format!(
                    "paper baselines: near {} µs vs far {} µs; near onset ~{} cores, far onset ~{} cores",
                    paper::FIG5_LAT_NEAR_US,
                    paper::FIG5_LAT_FAR_US,
                    paper::FIG5_NEAR_ONSET_CORES,
                    paper::FIG5_FAR_ONSET_CORES
                )],
                checks: checks_lat,
                runs: Vec::new(),
            },
            FigureData {
                id: "fig5-bw",
                title: "Placement impact on network bandwidth under contention (henri)".into(),
                xlabel: "computing cores",
                ylabel: "bandwidth (B/s)",
                series: bw_series,
                notes: vec![
                    "paper: data near → steady decrease; data far → abrupt drop".into(),
                ],
                checks: checks_bw,
                runs: Vec::new(),
            },
        ]
    }
}

/// Run Figure 5 (returns one `FigureData` for latency, one for bandwidth).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    campaign::run_experiment(&Fig5, &campaign::CampaignOptions::serial(fidelity)).figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_quick_passes_checks() {
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for c in &f.checks {
                assert!(c.pass, "{}: {} — {}", f.id, c.name, c.detail);
            }
            assert_eq!(f.series.len(), 8);
        }
    }
}
