//! Figure 5 — impact of communication-thread placement and data locality
//! on the contention curves (§4.3).
//!
//! The four near/far combinations of {data, communication thread} relative
//! to the NIC. Figure 4 is the (data near, thread far) case; this driver
//! sweeps all four and checks the Table 1 qualitative summary:
//!
//! * thread near → latency rises *slightly*, early (from ~6 cores);
//! * thread far → latency rises *highly*, late (from ~25 cores);
//! * data near → bandwidth decreases *steadily*;
//! * data far → bandwidth drops *abruptly*.

use mpisim::pingpong::PingPongConfig;
use topology::{henri, BindingPolicy, Placement};

use crate::experiments::fig4_contention::sweep;
use crate::experiments::Fidelity;
use crate::paper;
use crate::report::{Check, FigureData};

/// Latency and bandwidth sweeps for one placement.
pub struct PlacementResult {
    /// Placement label.
    pub label: &'static str,
    /// Latency curves.
    pub lat: crate::experiments::fig4_contention::ContentionSweep,
    /// Bandwidth curves.
    pub bw: crate::experiments::fig4_contention::ContentionSweep,
}

/// Run the four placements.
pub fn run_placements(fidelity: Fidelity) -> Vec<PlacementResult> {
    let machine = henri();
    Placement::all_combinations()
        .into_iter()
        .map(|(label, placement)| {
            let data = match placement.data {
                BindingPolicy::NearNic => machine.near_numa(),
                BindingPolicy::FarFromNic => machine.far_numa(),
                BindingPolicy::Numa(n) => n,
            };
            let lat = sweep(
                &machine,
                placement,
                data,
                PingPongConfig::latency(fidelity.lat_reps()),
                true,
                fidelity,
                0xF16_5A,
            );
            let bw = sweep(
                &machine,
                placement,
                data,
                PingPongConfig {
                    size: 64 << 20,
                    reps: fidelity.bw_reps(),
                    warmup: 1,
                    mtag: 3,
                },
                false,
                fidelity,
                0xF16_5B,
            );
            PlacementResult { label, lat, bw }
        })
        .collect()
}

/// Run Figure 5 (returns one `FigureData` for latency, one for bandwidth).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    let results = run_placements(fidelity);

    // Index by (data, thread): 0 near/near, 1 near/far, 2 far/near, 3 far/far.
    let lat_full: Vec<f64> = results
        .iter()
        .map(|r| r.lat.comm_together.points.last().expect("points").y.median)
        .collect();
    let lat_base: Vec<f64> = results
        .iter()
        .map(|r| r.lat.comm_alone.points[0].y.median)
        .collect();
    let bw_full: Vec<f64> = results
        .iter()
        .map(|r| r.bw.comm_together.points.last().expect("points").y.median)
        .collect();
    let bw_base: Vec<f64> = results
        .iter()
        .map(|r| r.bw.comm_alone.points[0].y.median)
        .collect();

    // Thread near (rows 0, 2) vs far (rows 1, 3).
    let near_infl = (lat_full[0] / lat_base[0]).max(lat_full[2] / lat_base[2]);
    let far_infl = (lat_full[1] / lat_base[1]).min(lat_full[3] / lat_base[3]);
    // Data near (rows 0, 1) vs far (rows 2, 3): loss at full occupancy.
    let near_loss = (1.0 - bw_full[0] / bw_base[0]).max(1.0 - bw_full[1] / bw_base[1]);
    let far_loss = (1.0 - bw_full[2] / bw_base[2]).min(1.0 - bw_full[3] / bw_base[3]);

    let checks_lat = vec![
        Check::new(
            "far thread suffers more latency inflation than near thread",
            far_infl > near_infl,
            format!("far ×{:.2} vs near ×{:.2}", far_infl, near_infl),
        ),
        Check::new(
            "near-thread latency stays bounded (~2 µs in the paper)",
            lat_full[0] < 3.0,
            format!("near/near at full occupancy: {:.2} µs", lat_full[0]),
        ),
        Check::new(
            "baseline latency better near the NIC (paper: 1.39 vs 1.67 µs)",
            lat_base[0] < lat_base[1],
            format!("near {:.2} µs vs far {:.2} µs", lat_base[0], lat_base[1]),
        ),
    ];
    let checks_bw = vec![
        Check::new(
            "data far from the NIC loses more bandwidth than data near",
            far_loss > near_loss,
            format!(
                "far {:.0} % vs near {:.0} %",
                far_loss * 100.0,
                near_loss * 100.0
            ),
        ),
        Check::new(
            "every placement loses bandwidth at full occupancy",
            bw_full
                .iter()
                .zip(&bw_base)
                .all(|(f, b)| f < b),
            format!(
                "losses: {:?} %",
                bw_full
                    .iter()
                    .zip(&bw_base)
                    .map(|(f, b)| ((1.0 - f / b) * 100.0).round())
                    .collect::<Vec<_>>()
            ),
        ),
    ];

    let mut lat_series = Vec::new();
    let mut bw_series = Vec::new();
    for r in results {
        let mut la = r.lat.comm_alone;
        la.name = format!("{} — alone", r.label);
        let mut lt = r.lat.comm_together;
        lt.name = format!("{} — + STREAM", r.label);
        lat_series.push(la);
        lat_series.push(lt);
        let mut ba = r.bw.comm_alone;
        ba.name = format!("{} — alone", r.label);
        let mut bt = r.bw.comm_together;
        bt.name = format!("{} — + STREAM", r.label);
        bw_series.push(ba);
        bw_series.push(bt);
    }

    vec![
        FigureData {
            id: "fig5-lat",
            title: "Placement impact on network latency under contention (henri)".into(),
            xlabel: "computing cores",
            ylabel: "latency (us)",
            series: lat_series,
            notes: vec![format!(
                "paper baselines: near {} µs vs far {} µs; near onset ~{} cores, far onset ~{} cores",
                paper::FIG5_LAT_NEAR_US,
                paper::FIG5_LAT_FAR_US,
                paper::FIG5_NEAR_ONSET_CORES,
                paper::FIG5_FAR_ONSET_CORES
            )],
            checks: checks_lat,
            runs: Vec::new(),
        },
        FigureData {
            id: "fig5-bw",
            title: "Placement impact on network bandwidth under contention (henri)".into(),
            xlabel: "computing cores",
            ylabel: "bandwidth (B/s)",
            series: bw_series,
            notes: vec![
                "paper: data near → steady decrease; data far → abrupt drop".into(),
            ],
            checks: checks_bw,
            runs: Vec::new(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_quick_passes_checks() {
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for c in &f.checks {
                assert!(c.pass, "{}: {} — {}", f.id, c.name, c.detail);
            }
            assert_eq!(f.series.len(), 8);
        }
    }
}
