//! Figure 10 — communication performance inside real computational
//! kernels: distributed dense CG and GEMM on the task runtime (§6).
//!
//! Top plot: normalized sending bandwidth (profiler at the sender) vs the
//! number of workers. Bottom plot: fraction of CPU stalls caused by memory
//! accesses (simulated PMU). The paper's headline: CG (memory-bound) loses
//! up to 90 % of sending bandwidth with ~70 % memory stalls; GEMM
//! (compute-bound) loses at most ~20 % with ~20 % stalls.

use mpisim::Cluster;
use simcore::Series;
use taskrt::programs::{self, UseCaseConfig};
use taskrt::{Runtime, RuntimeConfig};
use topology::{henri, Placement};

use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::paper;
use crate::report::{Check, FigureData};

const KINDS: [&str; 2] = ["CG", "GEMM"];

/// Worker sweep of Figure 10.
fn worker_sweep(fidelity: Fidelity) -> Vec<usize> {
    fidelity.pick(&[1, 2, 4, 8, 12, 16, 20, 25, 30, 35], &[1, 8, 30])
}

fn fresh_cluster() -> Cluster {
    Cluster::new(
        &henri(),
        freq::Governor::Performance { turbo: true },
        freq::UncorePolicy::Auto,
        Placement::fig4_default(),
    )
}

/// One (kind, workers) measurement: raw send bandwidth and stall fraction.
/// Normalization to the 1-worker baseline happens in `finalize`, where all
/// points of the sweep are visible.
#[derive(Clone, Copy)]
struct UseCasePoint {
    send_bw: f64,
    stall_fraction: f64,
}

/// Registry driver for Figure 10 (sweep: {CG, GEMM} × worker counts).
pub struct Fig10;

impl Experiment for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn anchor(&self) -> &'static str {
        "§6, Figure 10"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let workers = worker_sweep(fidelity);
        let mut plan = Vec::new();
        for (ki, kind) in KINDS.iter().enumerate() {
            for (wi, &w) in workers.iter().enumerate() {
                plan.push(SweepPoint::new(
                    ki * workers.len() + wi,
                    format!("{} @ {} workers", kind, w),
                ));
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let workers = worker_sweep(ctx.fidelity);
        let kind = KINDS[point.index / workers.len()];
        let w = workers[point.index % workers.len()];
        let iters = ctx.fidelity.choose(3, 2);
        let cfg = match kind {
            "CG" => UseCaseConfig::cg(w, iters),
            _ => UseCaseConfig::gemm(w, iters),
        };
        let mut cluster = fresh_cluster();
        let mut rt = Runtime::new(RuntimeConfig::for_machine(&cluster.spec));
        programs::attach_n_workers(&mut cluster, &mut rt, w);
        let res = programs::run(&mut cluster, &mut rt, cfg);
        Ok(Box::new(UseCasePoint {
            send_bw: res.mean_send_bw,
            stall_fraction: res.stall_fraction,
        }))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let p = value.downcast_ref::<UseCasePoint>()?;
        let mut e = Enc::new();
        e.f64(p.send_bw).f64(p.stall_fraction);
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        let p = UseCasePoint { send_bw: d.f64()?, stall_fraction: d.f64()? };
        d.finish(Box::new(p) as PointValue)
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let workers = worker_sweep(fidelity);
        let mut sweeps = Vec::new();
        for (ki, kind) in KINDS.iter().enumerate() {
            let mut bw = Series::new(format!("{} normalized send bandwidth", kind));
            let mut stalls = Series::new(format!("{} memory-stall fraction", kind));
            let base = expect_value::<UseCasePoint>(points, ki * workers.len()).send_bw;
            for (wi, &w) in workers.iter().enumerate() {
                let p = expect_value::<UseCasePoint>(points, ki * workers.len() + wi);
                bw.push(w as f64, &[p.send_bw / base]);
                stalls.push(w as f64, &[p.stall_fraction]);
            }
            sweeps.push((bw, stalls));
        }
        let (gemm_bw, gemm_stalls) = sweeps.pop().expect("two sweeps");
        let (cg_bw, cg_stalls) = sweeps.pop().expect("two sweeps");

        let cg_final = cg_bw.points.last().expect("points").y.median;
        let gemm_final = gemm_bw.points.last().expect("points").y.median;
        let cg_stall_final = cg_stalls.points.last().expect("points").y.median;
        let gemm_stall_final = gemm_stalls.points.last().expect("points").y.median;

        let checks_bw = vec![
            Check::new(
                "CG loses most of its sending bandwidth at full occupancy (paper: −90 %)",
                cg_final < 0.35,
                format!(
                    "normalized bandwidth {:.2} (−{:.0} %)",
                    cg_final,
                    (1.0 - cg_final) * 100.0
                ),
            ),
            Check::new(
                "GEMM loses far less (paper: ≤ 20 %)",
                gemm_final > 0.6,
                format!(
                    "normalized bandwidth {:.2} (−{:.0} %)",
                    gemm_final,
                    (1.0 - gemm_final) * 100.0
                ),
            ),
            Check::new(
                "CG is hit much harder than GEMM",
                cg_final < gemm_final - 0.2,
                format!("CG {:.2} vs GEMM {:.2}", cg_final, gemm_final),
            ),
            Check::new(
                "degradation grows with the number of computing cores",
                {
                    let meds: Vec<f64> = cg_bw.points.iter().map(|p| p.y.median).collect();
                    meds.windows(2).all(|w| w[1] <= w[0] * 1.08)
                },
                "CG normalized bandwidth is (weakly) decreasing".to_string(),
            ),
        ];
        let checks_st = vec![
            Check::new(
                "CG stalls mostly on memory at full occupancy (paper: ~70 %)",
                cg_stall_final > 0.5,
                format!("stall fraction {:.2}", cg_stall_final),
            ),
            Check::new(
                "GEMM stalls far less (paper: ~20 %)",
                gemm_stall_final < 0.35,
                format!("stall fraction {:.2}", gemm_stall_final),
            ),
            Check::new(
                "stall ordering matches the bandwidth ordering",
                cg_stall_final > gemm_stall_final,
                format!("CG {:.2} vs GEMM {:.2}", cg_stall_final, gemm_stall_final),
            ),
        ];

        vec![
            FigureData {
                id: "fig10-bw",
                title: "Normalized sending bandwidth of CG and GEMM vs workers (henri, 2 ranks)"
                    .into(),
                xlabel: "workers per node",
                ylabel: "normalized send bandwidth",
                series: vec![cg_bw, gemm_bw],
                notes: vec![format!(
                    "paper: CG loses up to {:.0} %, GEMM at most {:.0} %",
                    paper::FIG10_CG_LOSS * 100.0,
                    paper::FIG10_GEMM_LOSS * 100.0
                )],
                checks: checks_bw,
                runs: Vec::new(),
            },
            FigureData {
                id: "fig10-stalls",
                title: "Memory-stall fraction of CG and GEMM vs workers (henri, 2 ranks)".into(),
                xlabel: "workers per node",
                ylabel: "stall fraction",
                series: vec![cg_stalls, gemm_stalls],
                notes: vec![format!(
                    "paper: ~{:.0} % stalls for CG vs ~{:.0} % for GEMM at full occupancy",
                    paper::FIG10_CG_STALLS * 100.0,
                    paper::FIG10_GEMM_STALLS * 100.0
                )],
                checks: checks_st,
                runs: Vec::new(),
            },
        ]
    }
}

/// Run Figure 10 (returns `[fig10-bw, fig10-stalls]`).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    campaign::run_experiment(&Fig10, &campaign::CampaignOptions::serial(fidelity)).figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_quick_passes_checks() {
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for c in &f.checks {
                assert!(c.pass, "{}: {} — {}", f.id, c.name, c.detail);
            }
        }
    }
}
