//! Figure 9 — impact of worker polling on network latency (§5.4).
//!
//! Workers busy-wait on the shared task list with an exponential nop
//! backoff. A ping-pong runs with *no tasks submitted*, so workers poll
//! constantly. Latency is measured for the paper's four configurations:
//! aggressive backoff (2 nops), StarPU default (32), huge backoff (10000 —
//! equivalent to paused) and fully paused workers.

use mpisim::pingpong::PingPongConfig;
use simcore::{JitterFamily, Series};
use taskrt::{pingpong as rt_pingpong, Runtime, RuntimeConfig};
use topology::{henri, BindingPolicy, Placement};

use crate::experiments::Fidelity;
use crate::report::{Check, FigureData};
use crate::protocol::{build_cluster, ProtocolConfig};

/// The size sweep of Figure 9 (latency region: 4 B – 64 KiB).
fn sizes(fidelity: Fidelity) -> Vec<usize> {
    fidelity.thin(&[4usize, 64, 1024, 4 * 1024, 16 * 1024, 64 * 1024])
}

/// Latency sweep for one polling configuration (`None` = paused workers).
fn sweep_config(backoff: Option<u32>, fidelity: Fidelity, seed: u64) -> Series {
    let machine = henri();
    let name = match backoff {
        Some(b) => format!("backoff {} nops", b),
        None => "paused workers".to_string(),
    };
    let mut series = Series::new(name);
    for &size in &sizes(fidelity) {
        let mut lats = Vec::new();
        for rep in 0..fidelity.reps() {
            let mut cfg = ProtocolConfig::new(machine.clone(), None);
            cfg.placement = Placement {
                comm_thread: BindingPolicy::NearNic,
                data: BindingPolicy::NearNic,
            };
            cfg.seed = seed + rep as u64;
            let family = JitterFamily::new(cfg.seed);
            let mut cluster = build_cluster(&cfg, &family, rep as u64);
            let mut rt_cfg = RuntimeConfig::for_machine(&machine);
            if let Some(b) = backoff {
                rt_cfg.backoff_max_nops = b;
            }
            let mut rt = Runtime::new(rt_cfg);
            let cores = cluster.compute_cores();
            rt.attach_workers(&mut cluster, 0, &cores.clone());
            rt.attach_workers(&mut cluster, 1, &cores);
            if backoff.is_none() {
                rt.pause_workers(&mut cluster, 0);
                rt.pause_workers(&mut cluster, 1);
            }
            let res = rt_pingpong::run(
                &mut cluster,
                &mut rt,
                PingPongConfig {
                    size,
                    reps: fidelity.lat_reps(),
                    warmup: 1,
                    mtag: 6,
                },
            );
            lats.push(res.median_latency_us());
        }
        series.push(size as f64, &lats);
    }
    series
}

/// Run Figure 9.
pub fn run(fidelity: Fidelity) -> FigureData {
    let aggressive = sweep_config(Some(2), fidelity, 0xF16_91);
    let default = sweep_config(Some(32), fidelity, 0xF16_92);
    let huge = sweep_config(Some(10_000), fidelity, 0xF16_93);
    let paused = sweep_config(None, fidelity, 0xF16_94);

    let at_small = |s: &Series| s.points[0].y.median;
    let l2 = at_small(&aggressive);
    let l32 = at_small(&default);
    let l10k = at_small(&huge);
    let lp = at_small(&paused);

    let checks = vec![
        Check::new(
            "latency grows with polling aggressiveness (2 > 32 > 10000)",
            l2 > l32 && l32 > l10k,
            format!("{:.1} / {:.1} / {:.1} µs", l2, l32, l10k),
        ),
        Check::new(
            "huge backoff ≈ paused workers",
            (l10k - lp).abs() / lp < 0.05,
            format!("{:.1} vs {:.1} µs", l10k, lp),
        ),
        Check::new(
            "aggressive polling adds a visible penalty over paused",
            l2 > lp * 1.02,
            format!("+{:.2} µs ({:.1} %)", l2 - lp, (l2 / lp - 1.0) * 100.0),
        ),
    ];

    FigureData {
        id: "fig9",
        title: "Impact of polling workers on network latency (henri)".into(),
        xlabel: "message size (B)",
        ylabel: "latency (us)",
        series: vec![aggressive, default, huge, paused],
        notes: vec![
            "paper: latency higher the more often workers poll; long backoff equals paused; \
             no effect on billy/pyxis (different locking)"
                .into(),
        ],
        checks,
        runs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 4);
    }
}
