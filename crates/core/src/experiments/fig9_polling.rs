//! Figure 9 — impact of worker polling on network latency (§5.4).
//!
//! Workers busy-wait on the shared task list with an exponential nop
//! backoff. A ping-pong runs with *no tasks submitted*, so workers poll
//! constantly. Latency is measured for the paper's four configurations:
//! aggressive backoff (2 nops), StarPU default (32), huge backoff (10000 —
//! equivalent to paused) and fully paused workers.

use mpisim::pingpong::PingPongConfig;
use simcore::{JitterFamily, Series};
use taskrt::{pingpong as rt_pingpong, Runtime, RuntimeConfig};
use topology::{henri, BindingPolicy, Placement};

use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::protocol::{build_cluster, ProtocolConfig};
use crate::report::{Check, FigureData};

/// The four polling configurations (`None` = paused workers).
const CONFIGS: [Option<u32>; 4] = [Some(2), Some(32), Some(10_000), None];

fn config_name(backoff: Option<u32>) -> String {
    match backoff {
        Some(b) => format!("backoff {} nops", b),
        None => "paused workers".to_string(),
    }
}

/// The size sweep of Figure 9 (latency region: 4 B – 64 KiB).
fn sizes(fidelity: Fidelity) -> Vec<usize> {
    fidelity.thin(&[4usize, 64, 1024, 4 * 1024, 16 * 1024, 64 * 1024])
}

/// Per-rep latencies of one (polling config, size) point.
struct Fig9Point {
    lats: Vec<f64>,
}

/// Registry driver for Figure 9 (sweep: 4 polling configs × sizes).
pub struct Fig9;

impl Experiment for Fig9 {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn anchor(&self) -> &'static str {
        "§5.4, Figure 9"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let sizes = sizes(fidelity);
        let mut plan = Vec::new();
        for (bi, &backoff) in CONFIGS.iter().enumerate() {
            for (si, &size) in sizes.iter().enumerate() {
                plan.push(SweepPoint::new(
                    bi * sizes.len() + si,
                    format!("{} @ {} B", config_name(backoff), size),
                ));
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let sizes = sizes(ctx.fidelity);
        let backoff = CONFIGS[point.index / sizes.len()];
        let size = sizes[point.index % sizes.len()];
        let machine = henri();
        let mut lats = Vec::new();
        for rep in 0..ctx.fidelity.reps() {
            let mut cfg = ProtocolConfig::new(machine.clone(), None);
            cfg.placement = Placement {
                comm_thread: BindingPolicy::NearNic,
                data: BindingPolicy::NearNic,
            };
            cfg.seed = ctx.seed.wrapping_add(rep as u64);
            let family = JitterFamily::new(cfg.seed);
            let mut cluster = build_cluster(&cfg, &family, rep as u64);
            let mut rt_cfg = RuntimeConfig::for_machine(&machine);
            if let Some(b) = backoff {
                rt_cfg.backoff_max_nops = b;
            }
            let mut rt = Runtime::new(rt_cfg);
            let cores = cluster.compute_cores();
            rt.attach_workers(&mut cluster, 0, &cores.clone());
            rt.attach_workers(&mut cluster, 1, &cores);
            if backoff.is_none() {
                rt.pause_workers(&mut cluster, 0);
                rt.pause_workers(&mut cluster, 1);
            }
            let res = rt_pingpong::run(
                &mut cluster,
                &mut rt,
                PingPongConfig {
                    size,
                    reps: ctx.fidelity.lat_reps(),
                    warmup: 1,
                    mtag: 6,
                },
            );
            lats.push(res.median_latency_us());
        }
        Ok(Box::new(Fig9Point { lats }))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let p = value.downcast_ref::<Fig9Point>()?;
        let mut e = Enc::new();
        e.f64s(&p.lats);
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        let p = Fig9Point { lats: d.f64s()? };
        d.finish(Box::new(p) as PointValue)
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let sizes = sizes(fidelity);
        let series: Vec<Series> = CONFIGS
            .iter()
            .enumerate()
            .map(|(bi, &backoff)| {
                let mut s = Series::new(config_name(backoff));
                for (si, &size) in sizes.iter().enumerate() {
                    let p = expect_value::<Fig9Point>(points, bi * sizes.len() + si);
                    s.push(size as f64, &p.lats);
                }
                s
            })
            .collect();

        let at_small = |s: &Series| s.points[0].y.median;
        let l2 = at_small(&series[0]);
        let l32 = at_small(&series[1]);
        let l10k = at_small(&series[2]);
        let lp = at_small(&series[3]);

        let checks = vec![
            Check::new(
                "latency grows with polling aggressiveness (2 > 32 > 10000)",
                l2 > l32 && l32 > l10k,
                format!("{:.1} / {:.1} / {:.1} µs", l2, l32, l10k),
            ),
            Check::new(
                "huge backoff ≈ paused workers",
                (l10k - lp).abs() / lp < 0.05,
                format!("{:.1} vs {:.1} µs", l10k, lp),
            ),
            Check::new(
                "aggressive polling adds a visible penalty over paused",
                l2 > lp * 1.02,
                format!("+{:.2} µs ({:.1} %)", l2 - lp, (l2 / lp - 1.0) * 100.0),
            ),
        ];

        vec![FigureData {
            id: "fig9",
            title: "Impact of polling workers on network latency (henri)".into(),
            xlabel: "message size (B)",
            ylabel: "latency (us)",
            series,
            notes: vec![
                "paper: latency higher the more often workers poll; long backoff equals paused; \
                 no effect on billy/pyxis (different locking)"
                    .into(),
            ],
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run Figure 9.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&Fig9, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 4);
    }
}
