//! `repro --validate` — the simcheck validation campaign.
//!
//! Not a paper figure and deliberately **not** in the experiment
//! registries (`--all` reproduces the paper; validation interrogates the
//! simulator itself). The driver folds simcheck's three layers into one
//! campaign plan:
//!
//! * one point per *(cluster preset × oracle family)* — closed-form
//!   expectations vs simulator runs (24 points);
//! * one point per *(fabric preset × collective oracle family)* — ring
//!   allreduce / tree bcast / alltoall closed forms and bounds at 8 henri
//!   ranks (9 points);
//! * one point per metamorphic invariant over a batch of random fluid
//!   scenarios (6 points), plus one per collective invariant over random
//!   collective schedules (3 points);
//! * the differential fuzz budget, chunked so the campaign engine can
//!   spread scenario replay across workers, plus one point differentially
//!   fuzzing random collective schedules against a sequential reference.
//!
//! The fuzz budget defaults to `Full`: 200 / `Quick`: 60 scenarios and can
//! be overridden with `--fuzz-budget N` (plumbed through the
//! `SIMCHECK_FUZZ_BUDGET` environment variable so the plan and the points
//! agree on the chunking). When `SIMCHECK_FAILURE_DIR` is set, every
//! shrunk failing script is also written there as a file — the nightly
//! long-fuzz workflow uploads that directory as an artifact.

use simcheck::scenario::GenConfig;
use simcheck::{collective, fuzz, metamorphic, oracles};
use topology::fabric::FabricPreset;
use topology::Preset;

use super::Fidelity;
use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::report::{Check, FigureData};

/// Scenarios per fuzz sweep point (chunk).
const FUZZ_CHUNK: usize = 50;

/// Scenario batch size for each metamorphic invariant point.
fn meta_count(fidelity: Fidelity) -> usize {
    fidelity.choose(40, 12)
}

/// Random collectives per collective-invariant point (each runs two full
/// cluster simulations).
fn coll_meta_count(fidelity: Fidelity) -> usize {
    fidelity.choose(12, 4)
}

/// Random collectives for the differential collective-fuzz point.
fn coll_fuzz_count(fidelity: Fidelity) -> usize {
    fidelity.choose(24, 6)
}

/// Total fuzz budget: `SIMCHECK_FUZZ_BUDGET` override or the fidelity
/// default. Read identically from `plan` and `run_point` so the chunking
/// is consistent within a campaign.
fn fuzz_budget(fidelity: Fidelity) -> usize {
    std::env::var("SIMCHECK_FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| fidelity.choose(200, 60))
}

fn fuzz_chunks(fidelity: Fidelity) -> usize {
    fuzz_budget(fidelity).div_ceil(FUZZ_CHUNK)
}

/// The validation campaign driver (`repro --validate`).
pub struct Validate;

impl Validate {
    fn oracle_points() -> usize {
        Preset::clusters().len() * oracles::OracleKind::ALL.len()
    }

    fn coll_oracle_points() -> usize {
        FabricPreset::ALL.len() * collective::CollectiveOracle::ALL.len()
    }

    fn meta_base(fidelity: Fidelity) -> usize {
        let _ = fidelity;
        Self::oracle_points() + Self::coll_oracle_points()
    }

    fn coll_meta_base(fidelity: Fidelity) -> usize {
        Self::meta_base(fidelity) + metamorphic::Invariant::ALL.len()
    }

    fn fuzz_base(fidelity: Fidelity) -> usize {
        Self::coll_meta_base(fidelity) + collective::CollectiveInvariant::ALL.len()
    }

    /// Index of the single collective-fuzz point (the campaign's last).
    fn coll_fuzz_index(fidelity: Fidelity) -> usize {
        Self::fuzz_base(fidelity) + fuzz_chunks(fidelity)
    }
}

impl Experiment for Validate {
    fn name(&self) -> &'static str {
        "validate"
    }

    fn anchor(&self) -> &'static str {
        "model validation (oracles, metamorphic invariants, differential fuzz)"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let mut plan = Vec::new();
        for preset in Preset::clusters() {
            for kind in oracles::OracleKind::ALL {
                plan.push(SweepPoint::new(
                    plan.len(),
                    format!("oracle {} on {}", kind.name(), preset.spec().name),
                ));
            }
        }
        for fabric in FabricPreset::ALL {
            for kind in collective::CollectiveOracle::ALL {
                plan.push(SweepPoint::new(
                    plan.len(),
                    format!("collective oracle {} on {} fabric", kind.name(), fabric.name()),
                ));
            }
        }
        for inv in metamorphic::Invariant::ALL {
            plan.push(SweepPoint::new(
                plan.len(),
                format!("metamorphic {} ({} scenarios)", inv.name(), meta_count(fidelity)),
            ));
        }
        for inv in collective::CollectiveInvariant::ALL {
            plan.push(SweepPoint::new(
                plan.len(),
                format!(
                    "collective invariant {} ({} schedules)",
                    inv.name(),
                    coll_meta_count(fidelity)
                ),
            ));
        }
        let budget = fuzz_budget(fidelity);
        for c in 0..fuzz_chunks(fidelity) {
            let n = FUZZ_CHUNK.min(budget - c * FUZZ_CHUNK);
            plan.push(SweepPoint::new(
                plan.len(),
                format!("differential fuzz chunk {} ({} scenarios)", c, n),
            ));
        }
        plan.push(SweepPoint::new(
            plan.len(),
            format!(
                "collective differential fuzz ({} schedules)",
                coll_fuzz_count(fidelity)
            ),
        ));
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let kinds = oracles::OracleKind::ALL.len();
        let outcomes: Vec<simcheck::Outcome> = if point.index < Self::oracle_points() {
            let preset = Preset::clusters()[point.index / kinds];
            let kind = oracles::OracleKind::ALL[point.index % kinds];
            kind.run(&preset.spec())
        } else if point.index < Self::meta_base(ctx.fidelity) {
            let i = point.index - Self::oracle_points();
            let ckinds = collective::CollectiveOracle::ALL.len();
            let fabric = FabricPreset::ALL[i / ckinds];
            let kind = collective::CollectiveOracle::ALL[i % ckinds];
            kind.run(fabric)
        } else if point.index < Self::coll_meta_base(ctx.fidelity) {
            let inv = metamorphic::Invariant::ALL[point.index - Self::meta_base(ctx.fidelity)];
            vec![inv.check(ctx.seed, meta_count(ctx.fidelity))]
        } else if point.index < Self::fuzz_base(ctx.fidelity) {
            let inv = collective::CollectiveInvariant::ALL
                [point.index - Self::coll_meta_base(ctx.fidelity)];
            vec![inv.check(ctx.seed, coll_meta_count(ctx.fidelity))]
        } else if point.index == Self::coll_fuzz_index(ctx.fidelity) {
            vec![collective::fuzz_collectives(
                ctx.seed,
                coll_fuzz_count(ctx.fidelity),
            )]
        } else {
            let chunk = point.index - Self::fuzz_base(ctx.fidelity);
            let budget = fuzz_budget(ctx.fidelity);
            let n = FUZZ_CHUNK.min(budget - chunk * FUZZ_CHUNK);
            let report = fuzz::run(ctx.seed, n, &GenConfig::default());
            if let Ok(dir) = std::env::var("SIMCHECK_FAILURE_DIR") {
                for f in &report.failures {
                    let _ = std::fs::create_dir_all(&dir);
                    let path = format!("{}/fuzz-seed-{:016x}.txt", dir, f.seed);
                    let body = format!(
                        "seed: {:#018x}\nreason: {}\nshrunk {} -> {} events\n\n{}",
                        f.seed, f.reason, f.events_before, f.events_after, f.script
                    );
                    let _ = std::fs::write(path, body);
                }
            }
            let detail = match report.failures.first() {
                None => format!("{} scenarios, 0 divergences", report.scenarios),
                Some(f) => format!(
                    "{} divergence(s) in {} scenarios; first: seed {:#018x}, {}, shrunk to {} \
                     event(s):\n{}",
                    report.failures.len(),
                    report.scenarios,
                    f.seed,
                    f.reason,
                    f.events_after,
                    f.script
                ),
            };
            vec![simcheck::Outcome::bool(
                format!("fuzz chunk {} [{} scenario(s)]", chunk, report.scenarios),
                report.failures.is_empty(),
                detail,
            )]
        };
        Ok(Box::new(outcomes))
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let mut checks = Vec::new();
        let mut oracle_n = 0usize;
        let mut meta_n = 0usize;
        let mut fuzz_scenarios = 0usize;
        for p in points {
            let outcomes = expect_value::<Vec<simcheck::Outcome>>(points, p.index);
            for o in outcomes {
                if p.index < Self::meta_base(fidelity) {
                    oracle_n += 1;
                } else if p.index < Self::fuzz_base(fidelity) {
                    meta_n += 1;
                } else if let Some(n) = o
                    .name
                    .rsplit('[')
                    .next()
                    .and_then(|t| t.split_whitespace().next())
                    .and_then(|t| t.parse::<usize>().ok())
                {
                    fuzz_scenarios += n;
                }
                checks.push(Check::new(o.name.clone(), o.pass, o.detail.clone()));
            }
        }
        let failed = checks.iter().filter(|c| !c.pass).count();
        vec![FigureData {
            id: "validate",
            title: format!(
                "Model validation: {} oracle checks, {} metamorphic invariants, {} fuzzed \
                 scenarios ({} failure(s))",
                oracle_n, meta_n, fuzz_scenarios, failed
            ),
            xlabel: "check",
            ylabel: "verdict",
            series: Vec::new(),
            notes: vec![
                "closed-form oracles on every cluster preset (DESIGN.md §11): eager α+β·size, \
                 rendezvous bandwidth, threshold crossover, turbo ladders, memory saturation, \
                 max-min shares"
                    .into(),
                "collective oracles on every fabric preset (DESIGN.md §14): ring allreduce \
                 2(n−1)·t(⌈s/n⌉), tree bcast ⌈log₂n⌉·(α+β·size), alltoall (n−1)·t and the \
                 busiest-link bisection bound"
                    .into(),
                "metamorphic invariants over random fluid scenarios: determinism, \
                 time-translation, permutation symmetry, monotonicity, conservation"
                    .into(),
                "collective invariants: rank-permutation symmetry (switch), interleave \
                 independence, per-link byte conservation; plus differential fuzz of random \
                 schedules against a sequential reference"
                    .into(),
                format!(
                    "differential fuzz: incremental vs reference solver (bit-exact) and permuted \
                     insertion orders, {} scenarios, failures shrunk to minimal scripts",
                    fuzz_scenarios
                ),
            ],
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run the validation campaign serially at the given fidelity.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&Validate, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_validation_passes_every_check() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        // All three layers contributed.
        assert!(f.checks.len() > Validate::oracle_points());
        assert!(f.title.contains("0 failure(s)"), "{}", f.title);
    }

    #[test]
    fn plan_respects_fuzz_budget_env() {
        // Serialized via the campaign engine elsewhere; here just exercise
        // the chunk arithmetic.
        let plan = Validate.plan(Fidelity::Quick);
        // The last point is the collective fuzz; the fluid chunks sit
        // between fuzz_base and it.
        let fuzz_points = plan.len() - 1 - Validate::fuzz_base(Fidelity::Quick);
        assert_eq!(fuzz_points, fuzz_budget(Fidelity::Quick).div_ceil(FUZZ_CHUNK));
        assert_eq!(
            Validate::coll_fuzz_index(Fidelity::Quick),
            plan.len() - 1
        );
    }
}
