//! Collective × memory-contention extension — the paper's §4 contention
//! protocol lifted from a two-rank ping-pong to N-rank collectives over
//! routed fabrics.
//!
//! Each sweep point runs one collective schedule (ring allreduce, binomial
//! tree allreduce or pairwise alltoall) on a fabric preset (switch, torus,
//! dragonfly) while `bg` cores *per node* run an endless STREAM triad on
//! the NIC-near NUMA node — the same node the communication buffers live
//! on, so DMA/PIO and the triad share a memory controller exactly as in
//! Figure 4. Two cluster scales are probed: 8 henri ranks (rendezvous-sized
//! messages) and 64 tiny2x2 ranks (the routed-fabric stress case).
//!
//! The world is pinned and jitter-free (userspace governor at base
//! frequency, uncore fixed at its maximum) so a point's value is a pure
//! function of its configuration: the campaign JSON is byte-identical at
//! any `--jobs` level and across store resumes, which
//! `tests/collective_equiv.rs` asserts. The STREAM-alone baseline is
//! memoized per (scale, core count) in the campaign's [`BaselineCache`]
//! and shared by every fabric preset and algorithm.
//!
//! [`BaselineCache`]: crate::campaign::BaselineCache

use kernels::stream::{workload, StreamKernel};

use freq::{Governor, UncorePolicy};
use std::sync::Arc;

use mpisim::collective::{self, Algorithm, Schedule};
use mpisim::Cluster;
use simcore::{Series, SimTime};
use topology::fabric::FabricPreset;
use topology::{henri, tiny2x2, BindingPolicy, MachineSpec, Placement};

use super::Fidelity;
use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::report::{Check, FigureData};

/// Simulated-time window of the STREAM-alone baseline measurement (400 µs
/// in engine picoseconds).
const ALONE_WINDOW: SimTime = SimTime(400_000_000);

/// The two cluster scales of the study.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// 8 ranks of the paper's reference machine (rendezvous messages).
    Henri8,
    /// 64 ranks of the tiny test machine (routed-fabric stress).
    Tiny64,
}

impl Scale {
    /// Rank count of the scale.
    pub fn ranks(self) -> usize {
        match self {
            Scale::Henri8 => 8,
            Scale::Tiny64 => 64,
        }
    }

    /// Machine model of each rank.
    pub fn machine(self) -> MachineSpec {
        match self {
            Scale::Henri8 => henri(),
            Scale::Tiny64 => tiny2x2(),
        }
    }

    /// Background STREAM cores per node at the contended point. On henri
    /// the count matters: the NIC DMA engine carries twice a core's
    /// max-min weight, so its share of the 45 GB/s NIC-NUMA controller
    /// only drops below the 10.8 GB/s DMA ceiling once 7+ triad cores
    /// compete (45·2/(2+k) < 10.8 ⇒ k ≥ 7); all 8 NIC-NUMA compute cores
    /// are used so rendezvous collectives are genuinely throttled.
    fn bg_cores(self) -> usize {
        match self {
            Scale::Henri8 => 8,
            Scale::Tiny64 => 2,
        }
    }

    /// STREAM array length per pass (sized to the machine's caches).
    fn stream_elems(self) -> usize {
        match self {
            Scale::Henri8 => 2_000_000,
            Scale::Tiny64 => 200_000,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Scale::Henri8 => "henri x 8",
            Scale::Tiny64 => "tiny2x2 x 64",
        }
    }
}

/// The collective algorithms probed per scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Alg {
    /// Ring allreduce (reduce-scatter + allgather).
    Ring,
    /// Binomial-tree allreduce (reduce + bcast).
    Tree,
    /// Pairwise-exchange alltoall.
    Alltoall,
}

impl Alg {
    fn label(self) -> &'static str {
        match self {
            Alg::Ring => "ring allreduce",
            Alg::Tree => "tree allreduce",
            Alg::Alltoall => "pairwise alltoall",
        }
    }

    /// The schedule of the algorithm at a scale. Payloads put henri in the
    /// rendezvous regime (DMA vs STREAM on the memory controller) and keep
    /// the 64-rank cases cheap: the ring chunks are eager, the tree
    /// payload is a single rendezvous message per edge.
    fn schedule(self, scale: Scale) -> Arc<Schedule> {
        let n = scale.ranks();
        match (self, scale) {
            (Alg::Ring, Scale::Henri8) => collective::cached(Algorithm::RingAllreduce, n, 1 << 20),
            (Alg::Ring, Scale::Tiny64) => {
                collective::cached(Algorithm::RingAllreduce, n, 256 << 10)
            }
            (Alg::Tree, _) => collective::cached(Algorithm::TreeAllreduce, n, 32 << 10),
            (Alg::Alltoall, _) => collective::cached(Algorithm::PairwiseAlltoall, n, 128 << 10),
        }
    }
}

/// One sweep configuration.
struct Cfg {
    scale: Scale,
    fabric: FabricPreset,
    alg: Alg,
    bg: usize,
}

/// Enumerate the sweep. Configurations come in (bg = 0, bg = max) pairs so
/// `finalize` can read slowdown ratios off adjacent indices. `Quick` keeps
/// one algorithm per scale on the switch fabric — still covering both the
/// 8-rank rendezvous and the 64-rank routed case the acceptance criteria
/// require.
fn configs(fidelity: Fidelity) -> Vec<Cfg> {
    let mut v = Vec::new();
    for scale in [Scale::Henri8, Scale::Tiny64] {
        let fabrics: &[FabricPreset] = match fidelity {
            Fidelity::Full => &FabricPreset::ALL,
            Fidelity::Quick => &[FabricPreset::Switch],
        };
        let algs: &[Alg] = match (fidelity, scale) {
            (Fidelity::Full, Scale::Henri8) => &[Alg::Ring, Alg::Alltoall],
            (Fidelity::Full, Scale::Tiny64) => &[Alg::Ring, Alg::Tree],
            (Fidelity::Quick, Scale::Henri8) => &[Alg::Ring],
            (Fidelity::Quick, Scale::Tiny64) => &[Alg::Tree],
        };
        for &fabric in fabrics {
            for &alg in algs {
                for bg in [0, scale.bg_cores()] {
                    v.push(Cfg { scale, fabric, alg, bg });
                }
            }
        }
    }
    v
}

/// The pinned, jitter-free world every point runs in.
fn cluster_for(scale: Scale, fabric: FabricPreset) -> Cluster {
    let spec = scale.machine();
    let n = scale.ranks();
    Cluster::with_fabric(
        &spec,
        fabric.spec(n).build_for(n),
        Governor::Userspace(spec.base_freq),
        UncorePolicy::Fixed(spec.uncore_range.1),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    )
}

/// Start `bg` endless STREAM triads per node, on the NIC-near NUMA node.
fn start_background(cluster: &mut Cluster, scale: Scale, bg: usize) -> Vec<(usize, memsim::exec::JobId)> {
    let mut jobs = Vec::new();
    if bg == 0 {
        return jobs;
    }
    let w = workload(StreamKernel::Triad, scale.stream_elems(), cluster.data_numa[0], 1);
    let cores = cluster.compute_cores();
    assert!(bg <= cores.len(), "more background cores than the machine has");
    for node in 0..cluster.nodes() {
        for &core in &cores[..bg] {
            let mut spec = w.on_core(core);
            spec.iterations = u64::MAX / 2;
            jobs.push((node, cluster.start_job(node, spec)));
        }
    }
    jobs
}

/// Stop the background jobs; mean attained per-core bandwidth (B/s).
fn stop_background(cluster: &mut Cluster, jobs: Vec<(usize, memsim::exec::JobId)>) -> f64 {
    let mut bw = 0.0;
    let mut n = 0.0;
    for (node, id) in jobs {
        if let Some(st) = cluster.stop_job(node, id) {
            let el = st.elapsed_s();
            if el > 0.0 {
                bw += st.bytes / el;
                n += 1.0;
            }
        }
    }
    if n > 0.0 {
        bw / n
    } else {
        0.0
    }
}

/// One contention point: collective time (µs) and the STREAM bandwidth
/// attained beside it (0 when `bg == 0`).
struct CollPoint {
    coll_us: f64,
    stream_bw: f64,
    stream_alone_bw: f64,
}

fn measure(ctx: &PointCtx<'_>, cfg: &Cfg) -> Result<CollPoint, String> {
    // STREAM-alone baseline: fabric-independent (no communication runs),
    // so it is memoized once per (scale, core count) and shared by every
    // preset and algorithm of the sweep.
    let stream_alone_bw = if cfg.bg > 0 {
        let key = format!(
            "collective_contention/{}/bg{}/stream-alone",
            cfg.scale.tag(),
            cfg.bg
        );
        let scale = cfg.scale;
        let bg = cfg.bg;
        *ctx.baselines.get_or_compute_result(&key, |_seed| {
            let mut c = cluster_for(scale, FabricPreset::Switch);
            let jobs = start_background(&mut c, scale, bg);
            let deadline = c.engine.now() + ALONE_WINDOW;
            while c.step_until(deadline).is_some() {}
            Ok(stop_background(&mut c, jobs))
        })?
    } else {
        0.0
    };

    let mut c = cluster_for(cfg.scale, cfg.fabric);
    let jobs = start_background(&mut c, cfg.scale, cfg.bg);
    let schedule = cfg.alg.schedule(cfg.scale);
    let elapsed = collective::run(&mut c, &schedule, 100, 0x7000).map_err(|e| e.to_string())?;
    let stream_bw = stop_background(&mut c, jobs);
    Ok(CollPoint {
        coll_us: elapsed.as_secs_f64() * 1e6,
        stream_bw,
        stream_alone_bw,
    })
}

/// Registry driver for the collective × memory-contention sweep.
pub struct CollectiveContention;

impl Experiment for CollectiveContention {
    fn name(&self) -> &'static str {
        "collective_contention"
    }

    fn anchor(&self) -> &'static str {
        "N-rank extension of §4 (collectives vs memory contention)"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        configs(fidelity)
            .iter()
            .enumerate()
            .map(|(i, c)| {
                SweepPoint::new(
                    i,
                    format!(
                        "{} on {}, {} ({}), {} bg core(s)",
                        c.alg.label(),
                        c.fabric.name(),
                        c.scale.tag(),
                        c.scale.ranks(),
                        c.bg
                    ),
                )
            })
            .collect()
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let cfgs = configs(ctx.fidelity);
        let cfg = &cfgs[point.index];
        Ok(Box::new(measure(ctx, cfg)?))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let p = value.downcast_ref::<CollPoint>()?;
        let mut e = Enc::new();
        e.f64(p.coll_us).f64(p.stream_bw).f64(p.stream_alone_bw);
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        let p = CollPoint {
            coll_us: d.f64()?,
            stream_bw: d.f64()?,
            stream_alone_bw: d.f64()?,
        };
        d.finish(Box::new(p) as PointValue)
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let cfgs = configs(fidelity);
        let mut series = Vec::new();
        // (cfg index of the contended point, collective slowdown ratio).
        let mut ratios: Vec<(usize, f64)> = Vec::new();
        for (k, pair) in cfgs.chunks(2).enumerate() {
            let alone = expect_value::<CollPoint>(points, 2 * k);
            let contended = expect_value::<CollPoint>(points, 2 * k + 1);
            let c = &pair[0];
            let mut s = Series::new(format!(
                "{}, {} ({})",
                c.alg.label(),
                c.fabric.name(),
                c.scale.tag()
            ));
            s.push(0.0, &[alone.coll_us]);
            s.push(pair[1].bg as f64, &[contended.coll_us]);
            series.push(s);
            ratios.push((2 * k + 1, contended.coll_us / alone.coll_us));
        }

        let find = |scale: Scale, alg: Alg| {
            ratios
                .iter()
                .find(|(i, _)| {
                    let c = &cfgs[*i];
                    c.scale == scale && c.alg == alg && c.fabric == FabricPreset::Switch
                })
                .map(|&(_, r)| r)
                .expect("switch-fabric config present at every fidelity")
        };
        let henri_ring = find(Scale::Henri8, Alg::Ring);
        let tiny_tree = find(Scale::Tiny64, Alg::Tree);
        let worst_speedup = ratios.iter().map(|&(_, r)| r).fold(f64::MAX, f64::min);
        // STREAM degradation beside the collectives (contended points only).
        let stream_worst = ratios
            .iter()
            .map(|&(i, _)| {
                let p = expect_value::<CollPoint>(points, i);
                p.stream_bw / p.stream_alone_bw
            })
            .fold(0.0f64, f64::max);
        let henri_pt = ratios
            .iter()
            .map(|&(i, _)| (&cfgs[i], expect_value::<CollPoint>(points, i)))
            .find(|(c, _)| c.scale == Scale::Henri8 && c.alg == Alg::Ring)
            .map(|(_, p)| p.stream_bw / p.stream_alone_bw)
            .expect("henri ring config present");

        let checks = vec![
            Check::new(
                "background memory traffic never speeds a collective up",
                worst_speedup >= 0.999,
                format!("smallest contended/alone time ratio {:.4}", worst_speedup),
            ),
            Check::new(
                "memory contention slows the 8-rank rendezvous ring allreduce",
                henri_ring > 1.02,
                format!("henri x 8 switch ring slowdown {:.3}x", henri_ring),
            ),
            Check::new(
                "the 64-rank tree allreduce degrades under contention too",
                tiny_tree > 1.02,
                format!("tiny2x2 x 64 switch tree slowdown {:.3}x", tiny_tree),
            ),
            Check::new(
                "STREAM never gains bandwidth beside a collective",
                stream_worst <= 1.001 && stream_worst > 0.0,
                format!("largest beside/alone STREAM bandwidth ratio {:.4}", stream_worst),
            ),
            Check::new(
                "the rendezvous DMA visibly taxes the triad cores",
                henri_pt < 0.999,
                format!("henri x 8 ring: STREAM at {:.3}x of alone", henri_pt),
            ),
        ];

        vec![FigureData {
            id: "collective_contention",
            title: "Collective completion time vs per-node STREAM cores (routed fabrics)".into(),
            xlabel: "background STREAM cores per node",
            ylabel: "collective completion time (us)",
            series,
            notes: vec![
                "extension: the §4 contention protocol applied to N-rank collectives; the \
                 triad arrays live on the NIC-near NUMA node, so eager PIO and rendezvous \
                 DMA share its memory controller with the background cores"
                    .into(),
                "pinned, jitter-free world (userspace governor at base frequency, uncore \
                 fixed at max): every point is a pure function of its configuration"
                    .into(),
            ],
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run the collective-contention study.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&CollectiveContention, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_pair_alone_with_contended() {
        for fidelity in [Fidelity::Quick, Fidelity::Full] {
            let cfgs = configs(fidelity);
            assert_eq!(cfgs.len() % 2, 0);
            for pair in cfgs.chunks(2) {
                assert_eq!(pair[0].bg, 0);
                assert!(pair[1].bg > 0);
                assert_eq!(pair[0].scale, pair[1].scale);
                assert_eq!(pair[0].fabric, pair[1].fabric);
                assert_eq!(pair[0].alg, pair[1].alg);
            }
            // Both acceptance scales are present even in Quick.
            assert!(cfgs.iter().any(|c| c.scale == Scale::Henri8));
            assert!(cfgs.iter().any(|c| c.scale == Scale::Tiny64));
        }
        assert_eq!(configs(Fidelity::Quick).len(), 4);
        assert_eq!(configs(Fidelity::Full).len(), 24);
    }

    #[test]
    fn collective_contention_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 2);
    }
}
