//! Exact binary (de)serialization of point values for the result store.
//!
//! Experiments persist their per-point measurements through
//! [`crate::campaign::Experiment::encode_value`] /
//! [`crate::campaign::Experiment::decode_value`], implemented with this
//! little writer/reader pair. The format is deliberately dumb: fixed-width
//! little-endian fields appended in declaration order, floats as raw IEEE
//! bits ([`f64::to_bits`]) so a restored value is **bit-identical** to the
//! computed one — the property the resume byte-identity guarantee rests
//! on. No self-description: the store key carries the experiment name and
//! a format version, and [`Dec::finish`] rejects length mismatches, so a
//! layout change simply invalidates old entries (they are recomputed).

/// Append-only binary writer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Empty writer.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Enc {
        self.buf.push(v);
        self
    }

    /// Append a `bool` (one byte, 0/1).
    pub fn bool(&mut self, v: bool) -> &mut Enc {
        self.u8(v as u8)
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) -> &mut Enc {
        self.u64(v as u64)
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Enc {
        self.u64(v.to_bits())
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Enc {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
        self
    }

    /// Append a length-prefixed `Option<String>`.
    pub fn opt_str(&mut self, v: &Option<String>) -> &mut Enc {
        match v {
            Some(s) => self.bool(true).str(s),
            None => self.bool(false),
        }
    }

    /// Append a length-prefixed `f64` slice (exact bits).
    pub fn f64s(&mut self, vs: &[f64]) -> &mut Enc {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
        self
    }

    /// Finish, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Fallible sequential reader over bytes produced by [`Enc`]. Every getter
/// returns `None` on underrun instead of panicking: a short or stale entry
/// decodes to `None` and the point is recomputed.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Read a `bool`; bytes other than 0/1 are malformed.
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Read a `usize` (stored as `u64`; rejects values over `usize::MAX`).
    pub fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let n = self.usize()?;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    /// Read a length-prefixed `Option<String>`.
    pub fn opt_str(&mut self) -> Option<Option<String>> {
        if self.bool()? {
            Some(Some(self.str()?))
        } else {
            Some(None)
        }
    }

    /// Read a length-prefixed `f64` vector (exact bits).
    pub fn f64s(&mut self) -> Option<Vec<f64>> {
        let n = self.usize()?;
        // Guard the allocation against a corrupt length prefix.
        if n > self.buf.len().saturating_sub(self.pos) / 8 {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Some(out)
    }

    /// Consume and return every remaining byte (for nested payloads whose
    /// inner layout is decoded by someone else).
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Succeeds only if every byte was consumed — trailing bytes mean the
    /// entry was written by a different layout and must not be trusted.
    pub fn finish<T>(self, value: T) -> Option<T> {
        if self.pos == self.buf.len() {
            Some(value)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut e = Enc::new();
        e.u8(7)
            .bool(true)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX)
            .usize(42)
            .f64(-0.0)
            .f64(f64::NAN)
            .str("héllo")
            .opt_str(&Some("err".into()))
            .opt_str(&None)
            .f64s(&[1.5, f64::INFINITY, 1e-300]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.bool(), Some(true));
        assert_eq!(d.u32(), Some(0xDEAD_BEEF));
        assert_eq!(d.u64(), Some(u64::MAX));
        assert_eq!(d.usize(), Some(42));
        assert_eq!(d.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(d.f64().map(f64::to_bits), Some(f64::NAN.to_bits()));
        assert_eq!(d.str(), Some("héllo".to_string()));
        assert_eq!(d.opt_str(), Some(Some("err".to_string())));
        assert_eq!(d.opt_str(), Some(None));
        let vs = d.f64s().unwrap();
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[0], 1.5);
        assert!(vs[1].is_infinite());
        assert_eq!(d.finish(()), Some(()));
    }

    #[test]
    fn underrun_and_trailing_bytes_are_rejected() {
        let mut e = Enc::new();
        e.f64s(&[1.0, 2.0]);
        let bytes = e.into_bytes();
        // Underrun: truncated buffer fails cleanly.
        let mut d = Dec::new(&bytes[..bytes.len() - 1]);
        assert_eq!(d.f64s(), None);
        // Trailing bytes: finish refuses.
        let mut d = Dec::new(&bytes);
        let _ = d.f64s().unwrap();
        let mut with_tail = bytes.clone();
        with_tail.push(0);
        let mut d2 = Dec::new(&with_tail);
        let v = d2.f64s().unwrap();
        assert_eq!(d2.finish(v), None);
    }

    #[test]
    fn corrupt_length_prefix_does_not_overallocate() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // absurd element count
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).f64s(), None);
    }

    #[test]
    fn bad_bool_byte_is_malformed() {
        assert_eq!(Dec::new(&[2]).bool(), None);
    }
}
