//! Crash-proof experiment campaigns.
//!
//! A campaign is a sequence of seeded repetitions of one measurement. The
//! healthy drivers run their reps inline — a panic aborts the whole figure.
//! Fault-injection experiments cannot afford that: a single unlucky rep
//! (exhausted rendezvous retries, a wedged engine, a genuine bug tripped by
//! a rare schedule) would throw away every other rep's data. This runner
//! executes each repetition under [`std::panic::catch_unwind`], retries a
//! failed rep **once** with a freshly derived seed, and otherwise records a
//! structured failure so the campaign still produces its median/decile
//! bands from the surviving repetitions.
//!
//! Panics raised inside a repetition are silenced (no backtrace spam on
//! stderr) via a process-global hook that defers to the previous hook
//! unless the current thread is inside a guarded repetition.

use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::report::RunOutcome;

/// How one repetition of a campaign ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// First attempt completed.
    Completed,
    /// First attempt failed; the retry with a fresh seed completed.
    Recovered {
        /// Seed of the failed first attempt.
        failed_seed: u64,
        /// Error text of the failed first attempt.
        error: String,
    },
    /// Both attempts failed; no data from this rep.
    Failed {
        /// Error text of the last attempt.
        error: String,
    },
    /// The attempt blew its wall-clock deadline and was cooperatively
    /// cancelled (see [`simcore::cancel`]). Terminal: a timed-out attempt
    /// is not retried — the retry would spend the same budget wedging the
    /// same way, doubling the campaign's worst-case wall time.
    TimedOut {
        /// Error text of the cancelled attempt (names the deadline and the
        /// engine's stall diagnostic).
        error: String,
    },
}

impl RunStatus {
    /// Short status label used in exports
    /// ("ok" / "recovered" / "failed" / "timeout").
    pub fn label(&self) -> &'static str {
        match self {
            RunStatus::Completed => "ok",
            RunStatus::Recovered { .. } => "recovered",
            RunStatus::Failed { .. } => "failed",
            RunStatus::TimedOut { .. } => "timeout",
        }
    }

    /// Error text, if any attempt failed.
    pub fn error(&self) -> Option<&str> {
        match self {
            RunStatus::Completed => None,
            RunStatus::Recovered { error, .. }
            | RunStatus::Failed { error }
            | RunStatus::TimedOut { error } => Some(error),
        }
    }

    /// True when the repetition produced no data (failed or timed out).
    pub fn is_lost(&self) -> bool {
        matches!(self, RunStatus::Failed { .. } | RunStatus::TimedOut { .. })
    }
}

/// Record of one repetition: which seed finally ran and how it went.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Repetition index.
    pub rep: u32,
    /// Seed of the attempt the record describes (the retry seed for
    /// recovered reps).
    pub seed: u64,
    /// Outcome.
    pub status: RunStatus,
}

impl RunRecord {
    /// Convert to the export form attached to [`crate::report::FigureData`].
    pub fn outcome(&self) -> RunOutcome {
        RunOutcome {
            rep: self.rep,
            seed: self.seed,
            status: self.status.label(),
            error: self.status.error().map(str::to_owned),
            ..Default::default()
        }
    }
}

/// Result of a whole campaign: per-rep records plus the values of the
/// successful repetitions (in rep order).
#[derive(Clone, Debug)]
pub struct Campaign<R> {
    /// One record per repetition, including failed ones.
    pub records: Vec<RunRecord>,
    /// `(rep, value)` for every successful repetition.
    pub values: Vec<(u32, R)>,
}

impl<R> Campaign<R> {
    /// Number of repetitions that produced no data.
    pub fn failed(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_lost()).count()
    }

    /// True when at least one rep failed permanently (the campaign's
    /// statistics cover only the surviving reps).
    pub fn is_partial(&self) -> bool {
        self.failed() > 0
    }

    /// Export records as [`RunOutcome`]s for a figure.
    pub fn outcomes(&self) -> Vec<RunOutcome> {
        self.records.iter().map(RunRecord::outcome).collect()
    }
}

thread_local! {
    static GUARDED: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Install (once, process-wide) a panic hook that stays silent while the
/// current thread runs a guarded repetition and defers to the previously
/// installed hook everywhere else.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !GUARDED.with(|g| g.get()) {
                prev(info);
            }
        }));
    });
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` with panics caught and silenced; an `Err` return and a panic
/// both come back as the error string. Nests: the campaign engine guards
/// whole sweep points while `run_campaign` guards individual repetitions
/// inside them, so the guard flag is saved and restored rather than reset.
pub fn guarded<R, E: fmt::Display>(f: impl FnOnce() -> Result<R, E>) -> Result<R, String> {
    install_quiet_hook();
    let prev = GUARDED.with(|g| g.replace(true));
    let caught = panic::catch_unwind(AssertUnwindSafe(f));
    GUARDED.with(|g| g.set(prev));
    match caught {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!("panic: {}", panic_message(payload))),
    }
}

/// Derive the retry seed for a failed repetition. SplitMix64-style mix of
/// the original seed and the rep index — deterministic, but disjoint from
/// every first-attempt seed the campaign uses.
pub fn retry_seed(seed: u64, rep: u32) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rep as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `reps` repetitions of `attempt` crash-proof.
///
/// `attempt(rep, seed)` measures one repetition with the given seed and may
/// return an error **or panic**; both count as a failed attempt. The first
/// attempt of rep `i` uses `base_seed + i` (matching the seeded-repetition
/// convention of the healthy drivers); a failed attempt is retried once
/// with [`retry_seed`]`(base_seed, i)`. A rep whose retry also fails is
/// recorded as [`RunStatus::Failed`] and contributes no value.
pub fn run_campaign<R, E: fmt::Display>(
    reps: u32,
    base_seed: u64,
    mut attempt: impl FnMut(u32, u64) -> Result<R, E>,
) -> Campaign<R> {
    let mut records = Vec::with_capacity(reps as usize);
    let mut values = Vec::new();
    for rep in 0..reps {
        let seed = base_seed.wrapping_add(rep as u64);
        match guarded(|| attempt(rep, seed)) {
            Ok(v) => {
                records.push(RunRecord {
                    rep,
                    seed,
                    status: RunStatus::Completed,
                });
                values.push((rep, v));
            }
            Err(first_error) => {
                let fresh = retry_seed(base_seed, rep);
                match guarded(|| attempt(rep, fresh)) {
                    Ok(v) => {
                        records.push(RunRecord {
                            rep,
                            seed: fresh,
                            status: RunStatus::Recovered {
                                failed_seed: seed,
                                error: first_error,
                            },
                        });
                        values.push((rep, v));
                    }
                    Err(second_error) => records.push(RunRecord {
                        rep,
                        seed: fresh,
                        status: RunStatus::Failed {
                            error: second_error,
                        },
                    }),
                }
            }
        }
    }
    Campaign { records, values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_campaign_completes_every_rep() {
        let c = run_campaign(4, 100, |rep, seed| -> Result<u64, String> {
            assert_eq!(seed, 100 + rep as u64);
            Ok(seed * 2)
        });
        assert_eq!(c.records.len(), 4);
        assert!(c.records.iter().all(|r| r.status == RunStatus::Completed));
        assert_eq!(c.values.len(), 4);
        assert!(!c.is_partial());
        assert_eq!(c.failed(), 0);
    }

    #[test]
    fn panicking_rep_is_retried_with_fresh_seed() {
        let mut attempts = Vec::new();
        let c = run_campaign(3, 7, |rep, seed| -> Result<u64, String> {
            attempts.push((rep, seed));
            if rep == 1 && seed == 8 {
                panic!("injected crash in rep 1");
            }
            Ok(seed)
        });
        // Rep 1 ran twice: original seed 8, then the derived retry seed.
        assert_eq!(attempts.len(), 4);
        assert_eq!(attempts[2], (1, retry_seed(7, 1)));
        assert_eq!(c.values.len(), 3, "recovered rep still contributes");
        match &c.records[1].status {
            RunStatus::Recovered { failed_seed, error } => {
                assert_eq!(*failed_seed, 8);
                assert!(error.contains("injected crash"), "{}", error);
            }
            s => panic!("expected recovery, got {:?}", s),
        }
        assert!(!c.is_partial());
    }

    #[test]
    fn twice_failed_rep_yields_partial_campaign() {
        let c = run_campaign(3, 0, |rep, _seed| -> Result<u64, String> {
            if rep == 2 {
                Err("transfer failed after 9 retries".into())
            } else {
                Ok(1)
            }
        });
        assert_eq!(c.values.len(), 2);
        assert!(c.is_partial());
        assert_eq!(c.failed(), 1);
        let out = c.outcomes();
        assert_eq!(out[2].status, "failed");
        assert!(out[2].error.as_deref().unwrap().contains("9 retries"));
        // Median/decile bands still computable from survivors.
        let vals: Vec<f64> = c.values.iter().map(|&(_, v)| v as f64).collect();
        assert_eq!(simcore::Summary::of(&vals).n, 2);
    }

    #[test]
    fn retry_seeds_are_disjoint_from_first_attempt_seeds() {
        let base = 0xC0FFEE;
        for rep in 0..32 {
            let fresh = retry_seed(base, rep);
            for r2 in 0..32u64 {
                assert_ne!(fresh, base + r2);
            }
        }
    }

    #[test]
    fn mixed_panic_and_error_attempts() {
        // First attempt panics, retry errors: permanent failure with the
        // *second* error recorded.
        let c = run_campaign(1, 5, |_, seed| -> Result<(), String> {
            if seed == 5 {
                panic!("boom");
            }
            Err("fabric black-out".into())
        });
        match &c.records[0].status {
            RunStatus::Failed { error } => assert!(error.contains("black-out"), "{}", error),
            s => panic!("expected failure, got {:?}", s),
        }
    }
}
