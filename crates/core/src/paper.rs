//! Reference values extracted from the paper's text, used by the
//! experiments' qualitative checks and printed next to simulated results.
//!
//! All values are for **henri** unless stated otherwise.

/// §3.1: 4-byte latency at 2.3 GHz constant core frequency, µs.
pub const LAT_US_AT_2300MHZ: f64 = 1.8;
/// §3.1: 4-byte latency at 1.0 GHz constant core frequency, µs.
pub const LAT_US_AT_1000MHZ: f64 = 3.1;
/// §3.1: asymptotic bandwidth at 2.4 GHz uncore, bytes/s.
pub const BW_AT_UNCORE_MAX: f64 = 10.5e9;
/// §3.1: asymptotic bandwidth at 1.2 GHz uncore, bytes/s.
pub const BW_AT_UNCORE_MIN: f64 = 10.1e9;
/// §3.1: "+72 %" latency change over the core-frequency range vs "+5 %"
/// over the uncore range.
pub const LAT_CORE_FREQ_RATIO: f64 = LAT_US_AT_1000MHZ / LAT_US_AT_2300MHZ;

/// §3.2: latency beside computation vs alone (performance governor), µs.
pub const FIG2_LAT_TOGETHER_US: f64 = 1.52;
/// §3.2 companion value: latency alone, µs.
pub const FIG2_LAT_ALONE_US: f64 = 1.7;
/// §3.2: bandwidth beside computation vs alone, bytes/s (slight gain).
pub const FIG2_BW_TOGETHER: f64 = 9.097e9;
/// §3.2 companion value.
pub const FIG2_BW_ALONE: f64 = 9.063e9;

/// §3.3: AVX512 compute time with 4 computing cores, ms.
pub const FIG3_T4_MS: f64 = 135.0;
/// §3.3: AVX512 compute time with 20 computing cores, ms (weak scaling —
/// same per-core work, lower frequency).
pub const FIG3_T20_MS: f64 = 210.0;
/// §3.3: computing-core frequency with 4 AVX512 cores, GHz.
pub const FIG3_F4_GHZ: f64 = 3.0;
/// §3.3: computing-core frequency with 20 AVX512 cores, GHz.
pub const FIG3_F20_GHZ: f64 = 2.3;
/// §3.3: communication-core frequency (stable), GHz.
pub const FIG3_COMM_GHZ: f64 = 2.5;
/// §3.3: latency beside AVX computation vs alone, µs.
pub const FIG3_LAT_TOGETHER_US: f64 = 1.33;
/// §3.3 companion value.
pub const FIG3_LAT_ALONE_US: f64 = 1.49;

/// §4.2 (Fig 4a): computing-core count from which latency is impacted
/// (data near NIC, thread far).
pub const FIG4_LATENCY_ONSET_CORES: f64 = 22.0;
/// §4.2: latency inflation factor at full occupancy ("can double").
pub const FIG4_LATENCY_FACTOR: f64 = 2.0;
/// §4.2 (Fig 4b): computing-core count from which bandwidth is impacted.
pub const FIG4_BW_ONSET_CORES: f64 = 3.0;
/// §4.2: bandwidth reduced "by almost two thirds" at full occupancy.
pub const FIG4_BW_LOSS_AT_FULL: f64 = 2.0 / 3.0;
/// §4.3: STREAM loses at most 25 % beside the bandwidth benchmark (worst
/// around 5 computing cores).
pub const FIG4_STREAM_WORST_LOSS: f64 = 0.25;

/// §4.3 (Fig 5 baselines): latency with the communication thread near vs
/// far from the NIC, without computation, µs.
pub const FIG5_LAT_NEAR_US: f64 = 1.39;
/// §4.3 companion value.
pub const FIG5_LAT_FAR_US: f64 = 1.67;
/// §4.3: near-thread latency rises from ~6 computing cores but stays ≈2 µs.
pub const FIG5_NEAR_ONSET_CORES: f64 = 6.0;
/// §4.3: far-thread latency rises considerably from ~25 computing cores.
pub const FIG5_FAR_ONSET_CORES: f64 = 25.0;

/// §4.4 (Fig 6a, 5 computing cores): message size from which communications
/// degrade, bytes.
pub const FIG6_5CORES_COMM_ONSET: f64 = 64.0 * 1024.0;
/// §4.4 (Fig 6a): message size from which STREAM is impacted, bytes.
pub const FIG6_5CORES_STREAM_ONSET: f64 = 4.0 * 1024.0;
/// §4.4 (Fig 6b, 35 computing cores): communication degradation onset, bytes.
pub const FIG6_35CORES_COMM_ONSET: f64 = 128.0;

/// §4.5 (Fig 7): arithmetic-intensity boundary between memory- and
/// CPU-bound on henri, flop/B.
pub const FIG7_HENRI_BOUNDARY: f64 = 6.0;
/// §4.5: latency roughly doubles below the boundary.
pub const FIG7_LAT_FACTOR: f64 = 2.0;
/// §4.5: bandwidth drops by ~60 % below the boundary.
pub const FIG7_BW_DROP: f64 = 0.6;
/// §4.5: computation is slowed ~10 % by the bandwidth benchmark when
/// memory-bound.
pub const FIG7_COMPUTE_SLOWDOWN: f64 = 0.10;
/// §4.5: the boundary on billy, flop/B.
pub const FIG7_BILLY_BOUNDARY: f64 = 20.0;

/// §5.2: StarPU latency overhead on henri, µs.
pub const FIG8_OVERHEAD_HENRI_US: f64 = 38.0;
/// §5.2: StarPU latency overhead on billy, µs.
pub const FIG8_OVERHEAD_BILLY_US: f64 = 23.0;
/// §5.2: StarPU latency overhead on pyxis, µs.
pub const FIG8_OVERHEAD_PYXIS_US: f64 = 45.0;

/// §5.4: StarPU's default maximum backoff (nops).
pub const FIG9_DEFAULT_BACKOFF: u32 = 32;
/// §5.4: the "huge" backoff that behaves like paused workers.
pub const FIG9_HUGE_BACKOFF: u32 = 10_000;
/// §5.4: the aggressive backoff.
pub const FIG9_SMALL_BACKOFF: u32 = 2;

/// §6: CG send-bandwidth loss at full worker occupancy ("up to 90 %").
pub const FIG10_CG_LOSS: f64 = 0.90;
/// §6: GEMM send-bandwidth loss at full worker occupancy ("at most 20 %").
pub const FIG10_GEMM_LOSS: f64 = 0.20;
/// §6: CG memory-stall share at full occupancy.
pub const FIG10_CG_STALLS: f64 = 0.70;
/// §6: GEMM memory-stall share at full occupancy.
pub const FIG10_GEMM_STALLS: f64 = 0.20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_consistent() {
        assert!(LAT_US_AT_1000MHZ > LAT_US_AT_2300MHZ);
        assert!((LAT_CORE_FREQ_RATIO - 1.72).abs() < 0.01);
        assert!(BW_AT_UNCORE_MAX > BW_AT_UNCORE_MIN);
        assert!(FIG2_LAT_TOGETHER_US < FIG2_LAT_ALONE_US);
        assert!(FIG3_T20_MS > FIG3_T4_MS);
        assert!(FIG10_CG_LOSS > FIG10_GEMM_LOSS);
        assert!(FIG10_CG_STALLS > FIG10_GEMM_STALLS);
        assert!(FIG6_5CORES_COMM_ONSET > FIG6_5CORES_STREAM_ONSET);
    }
}
