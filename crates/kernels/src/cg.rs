//! Dense conjugate gradient (CG).
//!
//! The paper's second distributed use-case (§6): a dense CG built on
//! StarPU + MKL. CG is dominated by the matrix–vector product (`2n²` flops over
//! `8n²` matrix bytes → 0.25 flop/B) plus dots and AXPYs (even lower
//! intensity), so it is firmly memory-bound: at full occupancy the paper
//! sees ~70 % of CPU stalls caused by memory accesses and up to **90 %**
//! send-bandwidth loss.
//!
//! The real solver below is numerically verified against direct residual
//! computation on random SPD systems; the descriptor side exposes the
//! per-iteration phase structure used by the distributed use-case driver.

use freq::License;
use memsim::exec::Phase;
use topology::NumaId;

use crate::vecops::{axpy, dot, gemv, norm2, xpby};

/// Result of a CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final residual norm ‖b − A·x‖₂.
    pub residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solve `A·x = b` for symmetric positive-definite `A` (row-major `n×n`)
/// with plain conjugate gradient.
pub fn solve(a: &[f64], b: &[f64], tol: f64, max_iters: usize) -> CgResult {
    let n = b.len();
    assert_eq!(a.len(), n * n, "A must be n×n");
    assert!(tol > 0.0);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A·0
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rsold = dot(&r, &r);
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut iterations = 0;

    while iterations < max_iters && rsold.sqrt() / bnorm > tol {
        gemv(a, &p, &mut ap);
        let pap = dot(&p, &ap);
        assert!(pap > 0.0, "matrix is not positive definite");
        let alpha = rsold / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rsnew = dot(&r, &r);
        xpby(&r, rsnew / rsold, &mut p);
        rsold = rsnew;
        iterations += 1;
    }

    // True residual for reporting (not the recurrence).
    let mut ax = vec![0.0; n];
    gemv(a, &x, &mut ax);
    let res: f64 = b
        .iter()
        .zip(&ax)
        .map(|(bi, axi)| (bi - axi) * (bi - axi))
        .sum::<f64>()
        .sqrt();
    CgResult {
        x,
        iterations,
        residual: res,
        converged: res / bnorm <= tol * 10.0,
    }
}

/// Build a random symmetric positive-definite matrix (diagonally dominant).
pub fn random_spd(n: usize, rng: &mut simcore::Pcg32) -> Vec<f64> {
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let v = rng.uniform(-1.0, 1.0);
            a[i * n + j] = v;
            a[j * n + i] = v;
        }
    }
    // Diagonal dominance guarantees SPD.
    for i in 0..n {
        a[i * n + i] = n as f64 + 1.0 + rng.uniform(0.0, 1.0);
    }
    a
}

/// Per-iteration phases of the dense CG on an `n×n` system, all data homed
/// at `data`. Matches the real solver's loop:
///
/// * GEMV: `2n²` flops over `8n²` bytes (the matrix streams from memory),
/// * 2 dots + 3 vector updates: `~10n` flops over `~56n` bytes.
pub fn iteration_phases(n: usize, data: NumaId) -> Vec<Phase> {
    let nf = n as f64;
    vec![
        Phase {
            flops: 2.0 * nf * nf,
            bytes: 8.0 * nf * nf,
            data,
            license: License::Avx512,
        },
        Phase {
            flops: 10.0 * nf,
            bytes: 56.0 * nf,
            data,
            license: License::Avx512,
        },
    ]
}

/// Aggregate arithmetic intensity of one CG iteration (≈ 0.25 flop/B).
pub fn iteration_intensity(n: usize) -> f64 {
    let phases = iteration_phases(n, NumaId(0));
    let f: f64 = phases.iter().map(|p| p.flops).sum();
    let b: f64 = phases.iter().map(|p| p.bytes).sum();
    f / b
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Pcg32;

    #[test]
    fn solves_identity() {
        let n = 8;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let r = solve(&a, &b, 1e-12, 100);
        assert!(r.converged);
        for (xi, bi) in r.x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn solves_random_spd_systems() {
        let mut rng = Pcg32::new(7, 1);
        for &n in &[4usize, 16, 48] {
            let a = random_spd(n, &mut rng);
            let b: Vec<f64> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
            let r = solve(&a, &b, 1e-10, 10 * n);
            assert!(r.converged, "n={} residual {}", n, r.residual);
            assert!(r.residual < 1e-6 * (n as f64));
            assert!(r.iterations <= 10 * n);
        }
    }

    #[test]
    fn exact_convergence_in_n_steps_for_small_systems() {
        // CG converges in ≤ n iterations in exact arithmetic; with a good
        // condition number the numerical behaviour is close.
        let mut rng = Pcg32::new(9, 2);
        let n = 12;
        let a = random_spd(n, &mut rng);
        let b = vec![1.0; n];
        let r = solve(&a, &b, 1e-10, n + 3);
        assert!(r.converged, "residual {}", r.residual);
    }

    #[test]
    #[should_panic(expected = "positive definite")]
    fn rejects_indefinite_matrix() {
        // -I is symmetric negative definite.
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = -1.0;
        }
        let b = vec![1.0; n];
        let _ = solve(&a, &b, 1e-10, 10);
    }

    #[test]
    fn iteration_model_is_memory_bound() {
        let ai = iteration_intensity(1024);
        assert!((0.2..0.3).contains(&ai), "ai {}", ai);
    }

    #[test]
    fn gemv_phase_dominates_bytes() {
        let phases = iteration_phases(512, NumaId(0));
        assert!(phases[0].bytes > phases[1].bytes * 10.0);
    }
}
