//! Roofline model helpers (Williams, Waterman, Patterson).
//!
//! The paper expresses memory pressure through arithmetic intensity and the
//! roofline: attainable flops = min(peak flops, AI × memory bandwidth).
//! These helpers compute machine balance points and predicted performance —
//! used to locate the crossover of Figure 7 and to sanity-check the
//! simulator against closed-form expectations.

use topology::MachineSpec;

/// Attainable flop rate under the roofline.
pub fn attainable_flops(peak_flops: f64, mem_bw: f64, intensity: f64) -> f64 {
    assert!(peak_flops >= 0.0 && mem_bw >= 0.0 && intensity >= 0.0);
    (intensity * mem_bw).min(peak_flops)
}

/// Machine balance of one core: the intensity below which a single core is
/// memory-bound (its own load/store bandwidth is the limit).
pub fn core_balance(spec: &MachineSpec, freq_ghz: f64, license: usize) -> f64 {
    spec.flop_rate(freq_ghz, license) / spec.per_core_bw
}

/// Contended balance: the intensity below which `cores` cores sharing one
/// controller are collectively memory-bound. This is where the Figure 7
/// crossover sits: for henri with 35 cores it lands around 6–7 flop/B.
pub fn contended_balance(spec: &MachineSpec, freq_ghz: f64, license: usize, cores: u32) -> f64 {
    assert!(cores > 0);
    cores as f64 * spec.flop_rate(freq_ghz, license) / spec.mem_bw_per_numa
}

/// Time to execute `flops` at intensity `ai` on one core given an allocated
/// memory bandwidth (closed-form roofline-with-contention prediction, for
/// cross-checking the simulator).
pub fn phase_time(flops: f64, ai: f64, peak_flops: f64, allocated_bw: f64) -> f64 {
    assert!(ai > 0.0);
    let bytes = flops / ai;
    (flops / peak_flops).max(bytes / allocated_bw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::henri;

    #[test]
    fn roofline_kinks_at_balance() {
        let peak = 10.0e9;
        let bw = 5.0e9;
        // Below balance (2 flop/B): memory-bound.
        assert_eq!(attainable_flops(peak, bw, 1.0), 5.0e9);
        // At balance.
        assert_eq!(attainable_flops(peak, bw, 2.0), 10.0e9);
        // Above: flat.
        assert_eq!(attainable_flops(peak, bw, 8.0), 10.0e9);
    }

    #[test]
    fn henri_crossover_matches_paper_ballpark() {
        // Paper Figure 7: the boundary between memory- and CPU-bound is
        // ≈ 6 flop/B on henri with 35 computing cores at base frequency.
        let spec = henri();
        let ai = contended_balance(&spec, 2.3, 0, 35);
        assert!((4.0..10.0).contains(&ai), "crossover {}", ai);
    }

    #[test]
    fn single_core_balance_below_contended() {
        let spec = henri();
        let solo = core_balance(&spec, 2.3, 0);
        let many = contended_balance(&spec, 2.3, 0, 35);
        assert!(solo < many);
    }

    #[test]
    fn phase_time_regimes() {
        // 1e9 flops at AI 1 on a 10 Gflop/s core with 2 GB/s allocated:
        // memory-bound → 0.5 s.
        assert_eq!(phase_time(1e9, 1.0, 10e9, 2e9), 0.5);
        // With 100 GB/s allocated: compute-bound → 0.1 s.
        assert_eq!(phase_time(1e9, 1.0, 10e9, 100e9), 0.1);
    }
}
