//! The paper's tunable-arithmetic-intensity kernel (§4.5).
//!
//! A modified STREAM TRIAD: each array element is processed `cursor` times
//! before moving to the next one. Few repetitions → the loop streams through
//! memory (memory-bound); many repetitions → it spins on registers
//! (CPU-bound). The *cursor* thus dials the arithmetic intensity:
//!
//! ```text
//! intensity = 2·cursor flops / 24 bytes = cursor / 12  flop/B
//! ```

use freq::License;
use memsim::exec::Phase;
use topology::NumaId;

use crate::Workload;

/// Real implementation: TRIAD with `cursor` repeated multiply-adds per
/// element. The repetition chain feeds back into the accumulator so the
/// compiler cannot collapse it.
pub fn triad_cursor(a: &[f64], b: &[f64], scalar: f64, c: &mut [f64], cursor: u32) {
    assert!(cursor >= 1, "cursor must be at least 1");
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for i in 0..a.len() {
        let mut acc = a[i];
        for _ in 0..cursor {
            acc += scalar * b[i];
        }
        c[i] = acc;
    }
}

/// Expected result of [`triad_cursor`] for one element.
pub fn triad_cursor_reference(a: f64, b: f64, scalar: f64, cursor: u32) -> f64 {
    let mut acc = a;
    for _ in 0..cursor {
        acc += scalar * b;
    }
    acc
}

/// Arithmetic intensity of the kernel at a given cursor (flop/B).
pub fn intensity(cursor: u32) -> f64 {
    2.0 * cursor as f64 / 24.0
}

/// Cursor needed to reach a target arithmetic intensity (rounded up).
pub fn cursor_for_intensity(ai: f64) -> u32 {
    assert!(ai > 0.0);
    (ai * 12.0).ceil() as u32
}

/// Workload descriptor: one pass of `elems` elements with the given cursor.
pub fn workload(elems: usize, cursor: u32, data: NumaId, iterations: u64) -> Workload {
    assert!(cursor >= 1);
    Workload {
        phases: vec![Phase {
            flops: 2.0 * cursor as f64 * elems as f64,
            bytes: 24.0 * elems as f64,
            data,
            license: License::Normal,
        }],
        iterations,
        name: "tunable-triad",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_one_is_plain_triad() {
        let a: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..32).map(|i| (i + 1) as f64).collect();
        let mut c1 = vec![0.0; 32];
        let mut c2 = vec![0.0; 32];
        triad_cursor(&a, &b, 2.0, &mut c1, 1);
        crate::stream::triad(&a, &b, 2.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn cursor_accumulates() {
        let a = [1.0];
        let b = [2.0];
        let mut c = [0.0];
        triad_cursor(&a, &b, 0.5, &mut c, 4);
        // 1 + 4 × (0.5 × 2) = 5
        assert_eq!(c[0], 5.0);
        assert_eq!(c[0], triad_cursor_reference(1.0, 2.0, 0.5, 4));
    }

    #[test]
    fn intensity_roundtrip() {
        for cursor in [1u32, 3, 12, 72, 240] {
            let ai = intensity(cursor);
            assert!(cursor_for_intensity(ai) <= cursor + 1);
            assert!(cursor_for_intensity(ai) >= cursor);
        }
        // Paper's crossover: 6 flop/B needs cursor 72.
        assert_eq!(cursor_for_intensity(6.0), 72);
    }

    #[test]
    fn workload_intensity_matches_formula() {
        for cursor in [1u32, 10, 100] {
            let w = workload(1000, cursor, NumaId(0), 1);
            assert!((w.intensity() - intensity(cursor)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "cursor")]
    fn zero_cursor_rejected() {
        let a = [0.0];
        let b = [0.0];
        let mut c = [0.0];
        triad_cursor(&a, &b, 1.0, &mut c, 0);
    }
}
