//! AVX-class vector burn kernel (§3.3) and small dense linear-algebra
//! vector operations shared by the CG solver.
//!
//! The paper's AVX experiment runs "a set of multiple AVX512 floating
//! instructions" per core (weak scaling: every core does the same amount of
//! work) — a register-resident FMA chain with no memory traffic. Its only
//! observable effect is through frequency licensing.

use freq::License;
use topology::NumaId;

use crate::{single_phase, Workload};

/// Real FMA burn: `iters` fused multiply-adds over a small register-resident
/// accumulator array (8 lanes ≈ one ZMM register). Returns the accumulator
/// sum so the work cannot be optimized away.
pub fn fma_burn(iters: u64) -> f64 {
    let mut acc = [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    let m = 1.000000001f64;
    let a = 1e-9f64;
    for _ in 0..iters {
        for lane in &mut acc {
            *lane = lane.mul_add(m, a);
        }
    }
    acc.iter().sum()
}

/// Workload descriptor for the AVX experiment: `flops` of pure compute under
/// the given license. Weak scaling is achieved by giving each core the same
/// descriptor.
pub fn avx_workload(flops: f64, license: License, iterations: u64) -> Workload {
    single_phase("avx-burn", flops, 0.0, NumaId(0), license, iterations)
}

// ---- dense vector ops (used by the CG solver) ----

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← a·x + y`.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// `y ← x + b·y` (the "xpby" update used by CG's direction vector).
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] = x[i] + b * y[i];
    }
}

/// Dense symmetric matrix–vector product `y ← A·x` (row-major `n×n`).
pub fn gemv(a: &[f64], x: &[f64], y: &mut [f64]) {
    let n = x.len();
    assert_eq!(a.len(), n * n);
    assert_eq!(y.len(), n);
    for (i, yi) in y.iter_mut().enumerate() {
        let row = &a[i * n..(i + 1) * n];
        *yi = dot(row, x);
    }
}

/// Euclidean norm.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_burn_is_finite_and_deterministic() {
        let a = fma_burn(10_000);
        let b = fma_burn(10_000);
        assert!(a.is_finite());
        assert_eq!(a, b);
        assert!(a > 36.0); // started at Σ=36, strictly growing
    }

    #[test]
    fn avx_descriptor_pure_compute() {
        let w = avx_workload(1e9, License::Avx512, 5);
        assert_eq!(w.total_bytes(), 0.0);
        assert_eq!(w.total_flops(), 5e9);
        assert_eq!(w.phases[0].license, License::Avx512);
    }

    #[test]
    fn dot_axpy_xpby() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        let mut y2 = [1.0, 1.0, 1.0];
        xpby(&a, 10.0, &mut y2);
        assert_eq!(y2, [11.0, 12.0, 13.0]);
    }

    #[test]
    fn gemv_identity() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        gemv(&a, &x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn norm_of_unit_vectors() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }
}
