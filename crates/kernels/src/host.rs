//! Host-side timed execution of the real kernels.
//!
//! The simulator predicts performance on the paper's clusters; this module
//! *measures* the real kernels on the machine running the tests, so the
//! flop/byte accounting behind the descriptors can be sanity-checked
//! against actual hardware (and so the examples can show live numbers).

use std::time::Instant;

use crate::{gemm, stream, tunable};

/// Result of a timed host run.
#[derive(Clone, Copy, Debug)]
pub struct HostMeasurement {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Bytes of memory traffic (descriptor accounting).
    pub bytes: f64,
    /// Floating-point operations (descriptor accounting).
    pub flops: f64,
}

impl HostMeasurement {
    /// Attained memory bandwidth, bytes/s.
    pub fn bandwidth(&self) -> f64 {
        self.bytes / self.seconds
    }

    /// Attained flop rate, flops/s.
    pub fn flop_rate(&self) -> f64 {
        self.flops / self.seconds
    }

    /// Arithmetic intensity, flop/B.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }
}

/// Time `reps` passes of STREAM TRIAD over `n` elements with `threads`
/// host threads.
pub fn time_triad(n: usize, reps: u32, threads: usize) -> HostMeasurement {
    assert!(reps > 0);
    let a: Vec<f64> = (0..n).map(|i| (i % 128) as f64).collect();
    let b: Vec<f64> = (0..n).map(|i| (i % 64) as f64).collect();
    let mut c = vec![0.0f64; n];
    // Warm up once (page faults, caches).
    stream::triad_parallel(&a, &b, 1.5, &mut c, threads);
    let t0 = Instant::now();
    for _ in 0..reps {
        stream::triad_parallel(&a, &b, 1.5, &mut c, threads);
    }
    let seconds = t0.elapsed().as_secs_f64();
    // Keep the result observable so the work cannot be elided.
    assert!(c[n / 2].is_finite());
    HostMeasurement {
        seconds,
        bytes: 24.0 * n as f64 * reps as f64,
        flops: 2.0 * n as f64 * reps as f64,
    }
}

/// Time `reps` passes of the tunable-intensity TRIAD (single thread).
pub fn time_tunable(n: usize, cursor: u32, reps: u32) -> HostMeasurement {
    assert!(reps > 0);
    let a: Vec<f64> = (0..n).map(|i| (i % 128) as f64).collect();
    let b: Vec<f64> = (0..n).map(|i| (i % 64) as f64).collect();
    let mut c = vec![0.0f64; n];
    tunable::triad_cursor(&a, &b, 0.5, &mut c, cursor);
    let t0 = Instant::now();
    for _ in 0..reps {
        tunable::triad_cursor(&a, &b, 0.5, &mut c, cursor);
    }
    let seconds = t0.elapsed().as_secs_f64();
    assert!(c[n / 2].is_finite());
    HostMeasurement {
        seconds,
        bytes: 24.0 * n as f64 * reps as f64,
        flops: 2.0 * cursor as f64 * n as f64 * reps as f64,
    }
}

/// Time one blocked GEMM of size `n` (block `bs`).
pub fn time_gemm(n: usize, bs: usize) -> HostMeasurement {
    let a: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) - 3.0).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i % 5) as f64) - 2.0).collect();
    let mut c = vec![0.0f64; n * n];
    let t0 = Instant::now();
    gemm::gemm_blocked(n, n, n, &a, &b, &mut c, bs);
    let seconds = t0.elapsed().as_secs_f64();
    assert!(c[n * n / 2].is_finite());
    HostMeasurement {
        seconds,
        bytes: gemm::tile_bytes(n),
        flops: gemm::tile_flops(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_measurement_sane() {
        let m = time_triad(100_000, 3, 2);
        assert!(m.seconds > 0.0);
        assert!(m.bandwidth() > 1e7, "bw {}", m.bandwidth());
        assert!((m.intensity() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn tunable_intensity_scales_with_cursor() {
        let low = time_tunable(10_000, 1, 2);
        let high = time_tunable(10_000, 64, 2);
        assert!(high.intensity() > low.intensity() * 32.0);
        // More work per element ⇒ more time (on any real machine).
        assert!(high.seconds > low.seconds);
    }

    #[test]
    fn gemm_measurement_sane() {
        let m = time_gemm(64, 32);
        assert!(m.seconds > 0.0);
        assert!(m.flop_rate() > 1e6);
        assert!(m.intensity() > 1.0);
    }
}
