//! STREAM kernels (McCalpin): COPY and TRIAD.
//!
//! The paper produces memory contention with STREAM COPY
//! (`b[i] ← a[i]`) and TRIAD (`c[i] ← a[i] + C·b[i]`) over large arrays,
//! parallelized with OpenMP and allocated on a single NUMA node (§4.1).
//!
//! Byte accounting per element (8-byte doubles, write-allocate ignored as in
//! classic STREAM counting):
//!
//! * COPY:  1 read + 1 write = 16 B, 0 flops
//! * TRIAD: 2 reads + 1 write = 24 B, 2 flops (one multiply, one add)

use freq::License;
use memsim::exec::Phase;
use topology::NumaId;

use crate::Workload;

/// Which STREAM kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamKernel {
    /// `b[i] ← a[i]`
    Copy,
    /// `c[i] ← a[i] + C·b[i]`
    Triad,
}

impl StreamKernel {
    /// Bytes moved per array element.
    pub fn bytes_per_elem(self) -> f64 {
        match self {
            StreamKernel::Copy => 16.0,
            StreamKernel::Triad => 24.0,
        }
    }

    /// Flops per array element.
    pub fn flops_per_elem(self) -> f64 {
        match self {
            StreamKernel::Copy => 0.0,
            StreamKernel::Triad => 2.0,
        }
    }
}

/// Real COPY over slices. Returns the number of elements copied.
pub fn copy(a: &[f64], b: &mut [f64]) -> usize {
    assert_eq!(a.len(), b.len());
    b.copy_from_slice(a);
    a.len()
}

/// Real TRIAD: `c[i] = a[i] + scalar * b[i]`.
pub fn triad(a: &[f64], b: &[f64], scalar: f64, c: &mut [f64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for i in 0..a.len() {
        c[i] = a[i] + scalar * b[i];
    }
}

/// Multi-threaded real TRIAD across `threads` host threads (the OpenMP
/// parallel-for of the original benchmark). Splits the index space evenly.
pub fn triad_parallel(a: &[f64], b: &[f64], scalar: f64, c: &mut [f64], threads: usize) {
    assert!(threads > 0);
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    let n = a.len();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (ci, cc) in c.chunks_mut(chunk).enumerate() {
            let lo = ci * chunk;
            let ca = &a[lo..lo + cc.len()];
            let cb = &b[lo..lo + cc.len()];
            s.spawn(move || {
                for i in 0..cc.len() {
                    cc[i] = ca[i] + scalar * cb[i];
                }
            });
        }
    });
}

/// Verify a TRIAD result (exactly representable inputs make this an equality
/// check).
pub fn verify_triad(a: &[f64], b: &[f64], scalar: f64, c: &[f64]) -> bool {
    a.iter()
        .zip(b)
        .zip(c)
        .all(|((&x, &y), &z)| z == x + scalar * y)
}

/// Workload descriptor: one STREAM pass of `elems` elements per core per
/// iteration, data on `data` NUMA node.
///
/// STREAM is scalar-ish in the paper's build; wide vectors don't change its
/// memory-bound behaviour, so the descriptor uses the Normal license.
pub fn workload(kernel: StreamKernel, elems: usize, data: NumaId, iterations: u64) -> Workload {
    Workload {
        phases: vec![Phase {
            flops: kernel.flops_per_elem() * elems as f64,
            bytes: kernel.bytes_per_elem() * elems as f64,
            data,
            license: License::Normal,
        }],
        iterations,
        name: match kernel {
            StreamKernel::Copy => "stream-copy",
            StreamKernel::Triad => "stream-triad",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_copies() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut b = vec![0.0; 100];
        assert_eq!(copy(&a, &mut b), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn triad_matches_reference() {
        let a: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..64).map(|i| (i * 2) as f64).collect();
        let mut c = vec![0.0; 64];
        triad(&a, &b, 3.0, &mut c);
        assert!(verify_triad(&a, &b, 3.0, &c));
        assert_eq!(c[10], 10.0 + 3.0 * 20.0);
    }

    #[test]
    fn triad_parallel_equals_serial() {
        let n = 1013; // deliberately not a multiple of the thread count
        let a: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i % 31) as f64).collect();
        let mut c1 = vec![0.0; n];
        let mut c4 = vec![0.0; n];
        triad(&a, &b, 2.5, &mut c1);
        triad_parallel(&a, &b, 2.5, &mut c4, 4);
        assert_eq!(c1, c4);
    }

    #[test]
    fn triad_parallel_single_thread() {
        let a = vec![1.0; 10];
        let b = vec![2.0; 10];
        let mut c = vec![0.0; 10];
        triad_parallel(&a, &b, 0.5, &mut c, 1);
        assert!(c.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn descriptor_intensities() {
        let w = workload(StreamKernel::Triad, 1_000, NumaId(0), 1);
        // TRIAD: 2 flops / 24 bytes = 1/12 flop/B — memory-bound.
        assert!((w.intensity() - 1.0 / 12.0).abs() < 1e-12);
        let w = workload(StreamKernel::Copy, 1_000, NumaId(0), 1);
        assert_eq!(w.intensity(), 0.0);
        assert_eq!(w.total_bytes(), 16_000.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let a = vec![0.0; 4];
        let b = vec![0.0; 5];
        let mut c = vec![0.0; 4];
        triad(&a, &b, 1.0, &mut c);
    }
}
