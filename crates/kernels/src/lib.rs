//! # kernels — computational kernels, real and modelled
//!
//! Every kernel the paper exercises, in two forms:
//!
//! 1. **Real Rust implementations** — run on the host, numerically verified
//!    (STREAM COPY/TRIAD, the tunable-intensity TRIAD, naive prime counting,
//!    an FMA burn loop, blocked GEMM, dense conjugate gradient). These are
//!    used by the examples and benches, and they pin down the flop/byte
//!    accounting below.
//! 2. **Workload descriptors** — `(flops, bytes, NUMA node, license)` phase
//!    streams consumed by the simulator's executor ([`memsim::exec`]). The
//!    descriptor of each kernel is derived from the same loop structure as
//!    the real implementation, so the simulated arithmetic intensity is the
//!    real one.

#![warn(missing_docs)]

pub mod cg;
pub mod gemm;
pub mod host;
pub mod primes;
pub mod roofline;
pub mod stream;
pub mod tunable;
pub mod vecops;

use freq::License;
use memsim::exec::{JobSpec, Phase};
use topology::{CoreId, NumaId};

/// A per-core workload: the phases of one iteration and the iteration count.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Phases executed each iteration.
    pub phases: Vec<Phase>,
    /// Number of iterations.
    pub iterations: u64,
    /// Human-readable name.
    pub name: &'static str,
}

impl Workload {
    /// Bind this workload to a core, producing an executor job spec.
    pub fn on_core(&self, core: CoreId) -> JobSpec {
        JobSpec {
            core,
            phases: self.phases.clone(),
            iterations: self.iterations,
        }
    }

    /// Total flops of the whole job.
    pub fn total_flops(&self) -> f64 {
        self.phases.iter().map(|p| p.flops).sum::<f64>() * self.iterations as f64
    }

    /// Total bytes of the whole job.
    pub fn total_bytes(&self) -> f64 {
        self.phases.iter().map(|p| p.bytes).sum::<f64>() * self.iterations as f64
    }

    /// Aggregate arithmetic intensity (flops/byte).
    pub fn intensity(&self) -> f64 {
        let b = self.total_bytes();
        if b == 0.0 {
            f64::INFINITY
        } else {
            self.total_flops() / b
        }
    }
}

/// Convenience constructor for a single-phase workload.
pub fn single_phase(
    name: &'static str,
    flops: f64,
    bytes: f64,
    data: NumaId,
    license: License,
    iterations: u64,
) -> Workload {
    Workload {
        phases: vec![Phase {
            flops,
            bytes,
            data,
            license,
        }],
        iterations,
        name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_totals() {
        let w = single_phase("t", 100.0, 50.0, NumaId(0), License::Normal, 4);
        assert_eq!(w.total_flops(), 400.0);
        assert_eq!(w.total_bytes(), 200.0);
        assert_eq!(w.intensity(), 2.0);
    }

    #[test]
    fn pure_compute_intensity_is_infinite() {
        let w = single_phase("t", 100.0, 0.0, NumaId(0), License::Normal, 1);
        assert!(w.intensity().is_infinite());
    }

    #[test]
    fn on_core_binds() {
        let w = single_phase("t", 1.0, 1.0, NumaId(2), License::Avx2, 3);
        let j = w.on_core(CoreId(5));
        assert_eq!(j.core, CoreId(5));
        assert_eq!(j.iterations, 3);
        assert_eq!(j.phases.len(), 1);
        assert_eq!(j.phases[0].data, NumaId(2));
    }
}
