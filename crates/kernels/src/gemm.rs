//! Dense general matrix–matrix multiplication (GEMM).
//!
//! Real implementations (naive reference + cache-blocked) used by examples
//! and tests, plus the *tile task descriptor* used by the distributed
//! use-case of §6: the paper runs a dense GEMM built on StarPU + MKL over two
//! nodes and observes communications losing at most ~20 % of bandwidth —
//! GEMM is compute-bound (high arithmetic intensity), so its memory pressure
//! is moderate (~20 % of CPU stalls from memory at full occupancy).

use freq::License;
use memsim::exec::Phase;
use topology::NumaId;

/// Naive triple loop, row-major `C ← C + A·B` (`m×k`, `k×n`).
pub fn gemm_naive(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            for j in 0..n {
                c[i * n + j] += aip * b[p * n + j];
            }
        }
    }
}

/// Cache-blocked `C ← C + A·B` with `bs`-sized blocks; identical results to
/// [`gemm_naive`] up to floating-point associativity (we accumulate in the
/// same order within a block row, so results are exactly equal for the
/// blocked loop order used here when `bs ≥ k`; otherwise equal within fp
/// tolerance).
pub fn gemm_blocked(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    bs: usize,
) {
    assert!(bs > 0);
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for ii in (0..m).step_by(bs) {
        for pp in (0..k).step_by(bs) {
            for jj in (0..n).step_by(bs) {
                let i_end = (ii + bs).min(m);
                let p_end = (pp + bs).min(k);
                let j_end = (jj + bs).min(n);
                for i in ii..i_end {
                    for p in pp..p_end {
                        let aip = a[i * k + p];
                        for j in jj..j_end {
                            c[i * n + j] += aip * b[p * n + j];
                        }
                    }
                }
            }
        }
    }
}

/// Flops of a `b×b×b` tile update: `2·b³` (multiply + add).
pub fn tile_flops(b: usize) -> f64 {
    2.0 * (b as f64).powi(3)
}

/// Modelled memory traffic of one `b×b×b` tile GEMM with cache blocking.
///
/// A well-blocked kernel streams each operand tile from memory roughly 1.5
/// times (A and B panels are reused from cache across the inner blocking,
/// C is read+written): ≈ `1.5 · 3 · 8 · b²` bytes.
pub fn tile_bytes(b: usize) -> f64 {
    1.5 * 3.0 * 8.0 * (b as f64).powi(2)
}

/// Arithmetic intensity of a tile GEMM — grows linearly with tile size
/// (`b/18` flop/B); 512-tiles are ≈ 28 flop/B, firmly compute-bound.
pub fn tile_intensity(b: usize) -> f64 {
    tile_flops(b) / tile_bytes(b)
}

/// Simulator phase for one tile update on data homed at `data`.
pub fn tile_phase(b: usize, data: NumaId) -> Phase {
    Phase {
        flops: tile_flops(b),
        bytes: tile_bytes(b),
        data,
        license: License::Avx512,
    }
}

/// Two-phase tile model: a short panel-load burst (streaming the operand
/// tiles in, low intensity) followed by the cache-resident compute body.
/// The bursty loads of many workers collide on the controllers, producing
/// the intermittent stalls and mild communication impact the paper measures
/// for GEMM (§6) — behaviour a single averaged phase cannot show.
pub fn tile_phases_bursty(b: usize, data: NumaId) -> Vec<Phase> {
    let flops = tile_flops(b);
    let bytes = tile_bytes(b);
    vec![
        Phase {
            flops: 0.05 * flops,
            bytes: 0.75 * bytes,
            data,
            license: License::Avx512,
        },
        Phase {
            flops: 0.95 * flops,
            bytes: 0.25 * bytes,
            data,
            license: License::Avx512,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Pcg32;

    fn random_matrix(rng: &mut Pcg32, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = Pcg32::new(42, 0);
        for &(m, n, k, bs) in &[(4, 4, 4, 2), (8, 8, 8, 3), (13, 7, 9, 4), (16, 16, 16, 16)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            gemm_naive(m, n, k, &a, &b, &mut c1);
            gemm_blocked(m, n, k, &a, &b, &mut c2, bs);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-12, "mismatch {} vs {}", x, y);
            }
        }
    }

    #[test]
    fn identity_multiplication() {
        let n = 5;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut c = vec![0.0; n * n];
        gemm_naive(n, n, n, &a, &b, &mut c);
        assert_eq!(b, c);
    }

    #[test]
    fn accumulates_into_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut c = [10.0, 10.0, 10.0, 10.0];
        gemm_naive(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn tile_model_scaling() {
        // Intensity grows linearly with tile size.
        assert!((tile_intensity(512) / tile_intensity(256) - 2.0).abs() < 1e-12);
        // 512-tile ≈ 28.4 flop/B — compute-bound on every preset.
        let ai = tile_intensity(512);
        assert!((25.0..32.0).contains(&ai), "ai {}", ai);
    }

    #[test]
    fn tile_phase_license() {
        let p = tile_phase(256, NumaId(1));
        assert_eq!(p.license, License::Avx512);
        assert_eq!(p.data, NumaId(1));
        assert!(p.flops > p.bytes); // compute-bound
    }
}
