//! Naive prime counting — the paper's CPU-bound benchmark (§3.2).
//!
//! "A computing benchmark counts in a very naive way the number of prime
//! numbers in an interval. This forces the CPU to execute instructions
//! which do not require any memory access (the algorithm uses only few
//! integer variables)."

use freq::License;
use topology::NumaId;

use crate::{single_phase, Workload};

/// Naive primality test by trial division (deliberately unoptimized, like
/// the paper's benchmark: no square-root bound shortcuts beyond the obvious
/// one, no wheel).
pub fn is_prime_naive(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Count primes in `[lo, hi)` naively. Returns `(count, divisions)` where
/// `divisions` is the number of trial divisions executed — the work metric
/// used to build the simulator descriptor.
pub fn count_primes(lo: u64, hi: u64) -> (u64, u64) {
    let mut count = 0;
    let mut divisions = 0u64;
    for n in lo..hi {
        if n < 2 {
            continue;
        }
        let mut prime = true;
        let mut d = 2;
        while d * d <= n {
            divisions += 1;
            if n.is_multiple_of(d) {
                prime = false;
                break;
            }
            d += 1;
        }
        if prime {
            count += 1;
        }
    }
    (count, divisions)
}

/// Equivalent "flops" of one trial division in the simulator's accounting.
/// An integer divide occupies the scalar pipe for many cycles; on the
/// machines modelled a division costs roughly 6 flop-slots of issue width.
pub const FLOPS_PER_DIVISION: f64 = 6.0;

/// Workload descriptor for counting primes in `[lo, hi)`: pure compute, no
/// memory traffic (the paper's point).
pub fn workload(lo: u64, hi: u64, iterations: u64) -> Workload {
    let (_, divisions) = count_primes(lo, hi);
    single_phase(
        "primes",
        divisions as f64 * FLOPS_PER_DIVISION,
        0.0,
        NumaId(0),
        License::Normal,
        iterations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..30).filter(|&n| is_prime_naive(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn known_pi_values() {
        // π(100) = 25, π(1000) = 168; the range excludes `hi`.
        assert_eq!(count_primes(0, 100).0, 25);
        assert_eq!(count_primes(0, 102).0, 26); // 101 is prime
        assert_eq!(count_primes(0, 1000).0, 168);
    }

    #[test]
    fn interval_counting() {
        let (a, _) = count_primes(0, 500);
        let (b, _) = count_primes(500, 1000);
        let (all, _) = count_primes(0, 1000);
        assert_eq!(a + b, all);
    }

    #[test]
    fn divisions_grow_with_range() {
        let (_, d1) = count_primes(0, 1000);
        let (_, d2) = count_primes(0, 2000);
        assert!(d2 > d1);
    }

    #[test]
    fn workload_is_pure_compute() {
        let w = workload(0, 10_000, 3);
        assert_eq!(w.total_bytes(), 0.0);
        assert!(w.total_flops() > 0.0);
        assert!(w.intensity().is_infinite());
    }
}
