//! Property tests for the real kernels and their descriptors.

use kernels::{cg, gemm, primes, stream, tunable, vecops};
use proptest::prelude::*;
use simcore::Pcg32;
use topology::NumaId;

proptest! {
    /// TRIAD is exact on exactly-representable inputs (integers with a
    /// power-of-two scalar) and parallel execution equals serial.
    #[test]
    fn triad_parallel_equals_serial(
        n in 1usize..600,
        threads in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = Pcg32::new(seed, 0);
        let a: Vec<f64> = (0..n).map(|_| rng.below(1000) as f64).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.below(1000) as f64).collect();
        let mut c1 = vec![0.0; n];
        let mut c2 = vec![0.0; n];
        stream::triad(&a, &b, 2.0, &mut c1);
        stream::triad_parallel(&a, &b, 2.0, &mut c2, threads);
        prop_assert_eq!(&c1, &c2);
        prop_assert!(stream::verify_triad(&a, &b, 2.0, &c1));
    }

    /// Cursor-kernel result matches the per-element reference for random
    /// inputs and cursors.
    #[test]
    fn cursor_matches_reference(
        n in 1usize..100,
        cursor in 1u32..50,
        seed in any::<u64>(),
    ) {
        let mut rng = Pcg32::new(seed, 1);
        let a: Vec<f64> = (0..n).map(|_| rng.uniform(-4.0, 4.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.uniform(-4.0, 4.0)).collect();
        let s = 0.5;
        let mut c = vec![0.0; n];
        tunable::triad_cursor(&a, &b, s, &mut c, cursor);
        for i in 0..n {
            let expect = tunable::triad_cursor_reference(a[i], b[i], s, cursor);
            prop_assert!((c[i] - expect).abs() < 1e-12);
        }
    }

    /// Intensity/cursor conversions roundtrip.
    #[test]
    fn intensity_cursor_roundtrip(cursor in 1u32..10_000) {
        let ai = tunable::intensity(cursor);
        let back = tunable::cursor_for_intensity(ai);
        prop_assert!(back == cursor || back == cursor + 1);
    }

    /// Blocked GEMM equals naive GEMM for arbitrary shapes and block sizes.
    #[test]
    fn gemm_blocked_equals_naive(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..12,
        bs in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = Pcg32::new(seed, 2);
        let a: Vec<f64> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm::gemm_naive(m, n, k, &a, &b, &mut c1);
        gemm::gemm_blocked(m, n, k, &a, &b, &mut c2, bs);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    /// CG converges on random diagonally-dominant SPD systems and the
    /// returned x truly solves the system.
    #[test]
    fn cg_converges_and_solves(n in 2usize..24, seed in any::<u64>()) {
        let mut rng = Pcg32::new(seed, 3);
        let a = cg::random_spd(n, &mut rng);
        let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let r = cg::solve(&a, &b, 1e-10, 20 * n);
        prop_assert!(r.converged, "residual {}", r.residual);
        // Independent residual check via gemv.
        let mut ax = vec![0.0; n];
        vecops::gemv(&a, &r.x, &mut ax);
        let res: f64 = b.iter().zip(&ax).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt();
        prop_assert!(res < 1e-6, "true residual {}", res);
    }

    /// Prime counting is interval-additive and matches the naive
    /// per-number test.
    #[test]
    fn primes_interval_additive(lo in 0u64..2000, len1 in 1u64..500, len2 in 1u64..500) {
        let mid = lo + len1;
        let hi = mid + len2;
        let (a, _) = primes::count_primes(lo, mid);
        let (b, _) = primes::count_primes(mid, hi);
        let (all, _) = primes::count_primes(lo, hi);
        prop_assert_eq!(a + b, all);
        // Spot check against is_prime_naive.
        let direct = (lo..hi).filter(|&x| primes::is_prime_naive(x)).count() as u64;
        prop_assert_eq!(all, direct);
    }

    /// Descriptor totals scale linearly in iterations and elements.
    #[test]
    fn descriptor_linearity(elems in 1usize..100_000, iters in 1u64..16) {
        let w1 = stream::workload(stream::StreamKernel::Triad, elems, NumaId(0), 1);
        let wn = stream::workload(stream::StreamKernel::Triad, elems, NumaId(0), iters);
        prop_assert!((wn.total_bytes() - w1.total_bytes() * iters as f64).abs() < 1e-6);
        prop_assert!((wn.total_flops() - w1.total_flops() * iters as f64).abs() < 1e-6);
        // Intensity is independent of scale.
        prop_assert!((wn.intensity() - w1.intensity()).abs() < 1e-12);
    }

    /// GEMM tile model: flops cubic, bytes quadratic, intensity linear.
    #[test]
    fn gemm_tile_scaling(b in 8usize..512) {
        prop_assert!((gemm::tile_flops(2 * b) / gemm::tile_flops(b) - 8.0).abs() < 1e-9);
        prop_assert!((gemm::tile_bytes(2 * b) / gemm::tile_bytes(b) - 4.0).abs() < 1e-9);
        prop_assert!(
            (gemm::tile_intensity(2 * b) / gemm::tile_intensity(b) - 2.0).abs() < 1e-9
        );
    }
}
