//! A workspace-local, dependency-free drop-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API this repository's
//! benches use.
//!
//! The build environment has no access to a crates registry, so the real
//! criterion cannot be fetched. This shim times each benchmark with
//! `std::time::Instant` over `sample_size` iterations and prints a one-line
//! mean — no statistics, plots or baselines. It exists so `cargo bench`
//! still exercises every bench end to end.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimal stand-in for `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run and report a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(id.as_ref());
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// Measurement context passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `sample_size` calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `sample_size` calls of `routine`, excluding `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{:<40} (no measurements)", id);
        } else {
            let mean = self.total / self.iters as u32;
            println!("{:<40} mean {:>12.3?} over {} iters", id, mean, self.iters);
        }
    }
}

/// Batch sizing hints (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotations (recorded for display parity, otherwise ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's throughput (display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run and report one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.c.bench_function(full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Group benchmark functions into a callable, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); ignore them.
            $($group();)+
        }
    };
}
