//! Collection strategies (`prop::collection::{vec, btree_set}`).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::TestRng;

/// An inclusive size range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// Strategy producing `Vec`s of values from `element`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `Vec` of values from `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `BTreeSet`s of values from `element`.
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.draw(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; bounded retries approach the target
        // size, matching the real crate's best-effort semantics.
        for _ in 0..target.saturating_mul(10).max(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.sample(rng));
        }
        out
    }
}

/// `BTreeSet` of values from `element` with a target size in `size`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
