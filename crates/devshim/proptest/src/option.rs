//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy producing `Option`s of another strategy's values.
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match the real crate's bias towards `Some` (3:1).
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// `Some(value)` most of the time, occasionally `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
