//! The strategy combinators used by this workspace's property tests.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::TestRng;

/// A source of random values. Unlike the real proptest there is no value
/// tree / shrinking: a strategy is just a sampler.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from produced values.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }

    /// Sample one value wrapped in a (non-shrinking) [`ValueTree`], drawing
    /// randomness from the runner — mirrors `Strategy::new_tree` in the real
    /// crate closely enough for explicit-runner test loops.
    fn new_tree(
        &self,
        runner: &mut crate::test_runner::TestRunner,
    ) -> Result<SampledTree<Self::Value>, crate::TestCaseError> {
        Ok(SampledTree(self.sample(&mut runner.rng)))
    }
}

/// A generated value. The real proptest's trees support shrinking; this one
/// only reports the value it was built with.
pub trait ValueTree {
    /// The type of value held.
    type Value;
    /// The current (here: only) value.
    fn current(&self) -> Self::Value;
}

/// The [`ValueTree`] produced by [`Strategy::new_tree`].
#[derive(Clone, Debug)]
pub struct SampledTree<V>(pub V);

impl<V: Clone> ValueTree for SampledTree<V> {
    type Value = V;
    fn current(&self) -> V {
        self.0.clone()
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Build from the given alternatives (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union(alternatives)
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning a few orders of magnitude.
        (rng.next_f64() - 0.5) * 2e6
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
