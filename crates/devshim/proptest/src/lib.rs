//! A workspace-local, dependency-free drop-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API this repository uses.
//!
//! The build environment has no access to a crates registry, so the real
//! proptest cannot be fetched. This shim keeps the property tests compiling
//! and running: strategies are sampled from a deterministic SplitMix64
//! stream seeded from the test name, so runs are reproducible. Shrinking is
//! not implemented — a failing case reports its case number and seed
//! instead of a minimized input.

use std::fmt;

pub mod strategy;

/// Explicit-runner support (`TestRunner::deterministic()` + `new_tree`).
pub mod test_runner {
    use crate::TestRng;

    /// Holds the RNG strategies draw from when sampled via
    /// [`crate::strategy::Strategy::new_tree`].
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        pub(crate) rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed — same sequence every run.
        pub fn deterministic() -> TestRunner {
            TestRunner {
                rng: TestRng::new(0x5EED_CAFE_F00D_D00D),
            }
        }
    }
}

/// `prop::collection` / `prop::option` live at the crate root so that
/// `use proptest::prelude::*;` + `prop::collection::vec(...)` works exactly
/// like the real crate (whose prelude re-exports the crate as `prop`).
pub mod collection;
pub mod option;

/// Error returned from a property body via `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment variable
    /// (mirroring the real crate) so CI can raise the count without code
    /// changes.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic generator driving all strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed from a test name (FNV-1a) so distinct tests draw distinct,
    /// stable streams.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fail the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Supports the real macro's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(any::<bool>(), 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
