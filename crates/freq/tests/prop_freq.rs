//! Property tests for the frequency model.

use freq::{Activity, FreqModel, Governor, License, UncorePolicy};
use proptest::prelude::*;
use topology::{henri, CoreId, Preset};

fn preset_strategy() -> impl Strategy<Value = Preset> {
    prop_oneof![
        Just(Preset::Henri),
        Just(Preset::Bora),
        Just(Preset::Billy),
        Just(Preset::Pyxis),
    ]
}

fn activity_strategy() -> impl Strategy<Value = Activity> {
    prop_oneof![
        Just(Activity::Idle),
        Just(Activity::Light),
        Just(Activity::Heavy(License::Normal)),
        Just(Activity::Heavy(License::Avx2)),
        Just(Activity::Heavy(License::Avx512)),
    ]
}

proptest! {
    /// Every frequency is within the machine's physical range under any
    /// activity pattern.
    #[test]
    fn frequencies_within_range(
        preset in preset_strategy(),
        pattern in prop::collection::vec(activity_strategy(), 1..64),
        turbo in any::<bool>(),
    ) {
        let spec = preset.spec();
        let mut m = FreqModel::new(&spec, Governor::Performance { turbo }, UncorePolicy::Auto);
        for (i, &act) in pattern.iter().enumerate() {
            if (i as u32) < spec.core_count() {
                m.set_activity(CoreId(i as u32), act);
            }
        }
        let max_turbo = spec.turbo_table[0][0];
        for c in 0..spec.core_count() {
            let f = m.core_freq(CoreId(c));
            prop_assert!(f >= spec.idle_freq.min(spec.min_freq) - 1e-9, "{} too low", f);
            prop_assert!(f <= max_turbo + 1e-9, "{} above max turbo", f);
        }
        let u = m.uncore_freq();
        prop_assert!(u >= spec.uncore_range.0 - 1e-9 && u <= spec.uncore_range.1 + 1e-9);
    }

    /// Adding heavy cores never *raises* any active core's frequency
    /// (ladder monotonicity at the model level).
    #[test]
    fn adding_load_never_raises_frequency(
        n_before in 1u32..17,
        extra in 1u32..8,
    ) {
        let spec = henri();
        let mut m = FreqModel::new(&spec, Governor::Performance { turbo: true }, UncorePolicy::Auto);
        for c in 0..n_before {
            m.set_activity(CoreId(c), Activity::Heavy(License::Normal));
        }
        let before = m.core_freq(CoreId(0));
        for c in n_before..(n_before + extra).min(17) {
            m.set_activity(CoreId(c), Activity::Heavy(License::Normal));
        }
        let after = m.core_freq(CoreId(0));
        prop_assert!(after <= before + 1e-9, "{} -> {}", before, after);
    }

    /// Stricter licenses never raise the frequency at equal occupancy.
    #[test]
    fn stricter_license_never_faster(n in 1u32..18) {
        let spec = henri();
        let freq_for = |lic: License| {
            let mut m = FreqModel::new(
                &spec,
                Governor::Performance { turbo: true },
                UncorePolicy::Auto,
            );
            for c in 0..n {
                m.set_activity(CoreId(c), Activity::Heavy(lic));
            }
            m.core_freq(CoreId(0))
        };
        let normal = freq_for(License::Normal);
        let avx2 = freq_for(License::Avx2);
        let avx512 = freq_for(License::Avx512);
        prop_assert!(avx2 <= normal + 1e-9);
        prop_assert!(avx512 <= avx2 + 1e-9);
    }

    /// Userspace pins everything regardless of activity.
    #[test]
    fn userspace_invariant(
        pattern in prop::collection::vec(activity_strategy(), 1..36),
        ghz in 1.0f64..2.3,
    ) {
        let spec = henri();
        let mut m = FreqModel::new(&spec, Governor::Userspace(ghz), UncorePolicy::Fixed(2.4));
        for (i, &act) in pattern.iter().enumerate() {
            m.set_activity(CoreId(i as u32), act);
        }
        for c in 0..spec.core_count() {
            prop_assert_eq!(m.core_freq(CoreId(c)), ghz);
        }
    }

    /// heavy_total counts exactly the Heavy cores.
    #[test]
    fn heavy_total_is_exact(pattern in prop::collection::vec(activity_strategy(), 36)) {
        let spec = henri();
        let mut m = FreqModel::new(&spec, Governor::Performance { turbo: true }, UncorePolicy::Auto);
        let mut expected = 0;
        for (i, &act) in pattern.iter().enumerate() {
            m.set_activity(CoreId(i as u32), act);
            if matches!(act, Activity::Heavy(_)) {
                expected += 1;
            }
        }
        prop_assert_eq!(m.heavy_total(), expected);
    }
}
