//! # freq — CPU frequency model (core and uncore DVFS)
//!
//! Models the two frequency domains the paper studies (§3):
//!
//! * **Core frequency** — impacts computation units and L1/L2 caches. Under
//!   a dynamic governor the frequency of a core depends on its *activity*
//!   (idle / light polling / heavy compute), the *instruction license*
//!   (normal / AVX2 / AVX512 — wide-vector instructions force lower turbo
//!   ceilings, Gottschlag & Bellosa) and the number of active cores on the
//!   same socket (turbo ladder).
//! * **Uncore frequency** — impacts the last-level cache and the memory
//!   controller; it scales memory bandwidth slightly and is raised by the
//!   package when any core is busy.
//!
//! The model is pure state + queries; the simulation driver calls
//! [`FreqModel::set_activity`] on workload transitions and re-applies the
//! resulting frequencies to the engine's cycle resources.

#![warn(missing_docs)]

use simcore::{SimTime, Trace};
use topology::{CoreId, MachineSpec, SocketId};

/// Instruction license of a compute workload, ordered by how aggressively it
/// drags turbo frequencies down.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum License {
    /// Scalar / SSE-class instructions.
    Normal = 0,
    /// AVX2-class (256-bit) instructions.
    Avx2 = 1,
    /// AVX512-class (512-bit) instructions.
    Avx512 = 2,
}

impl License {
    /// Index into the machine's turbo tables.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// What a core is currently doing, as seen by the governor.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Activity {
    /// Nothing running: the governor parks the core at its idle frequency.
    #[default]
    Idle,
    /// A polling/communication loop: architecturally busy but light; does
    /// not climb the full turbo ladder (cf. the stable 2.5 GHz communication
    /// core in the paper's Figures 2 and 3).
    Light,
    /// A compute kernel with the given instruction license.
    Heavy(License),
}

/// Core-frequency governor.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Governor {
    /// All cores pinned at a constant frequency (the paper's `userspace`
    /// governor + `cpupower`, used for Figure 1).
    Userspace(f64),
    /// Active cores run at base/turbo, idle cores drop to the idle
    /// frequency (the paper's default setup).
    Performance {
        /// Whether turbo-boost is enabled.
        turbo: bool,
    },
}

/// Uncore-frequency policy.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum UncorePolicy {
    /// Pinned at a constant frequency (the paper pins it via BIOS/Likwid).
    Fixed(f64),
    /// Hardware-managed: maximum when any core is busy, minimum when the
    /// package idles.
    Auto,
}

/// The frequency model of one node.
pub struct FreqModel {
    name: String,
    sockets: u32,
    cores: u32,
    cores_per_socket: u32,
    idle_freq: f64,
    light_cap: f64,
    base_freq: f64,
    turbo_table: [Vec<f64>; 3],
    uncore_range: (f64, f64),
    governor: Governor,
    uncore: UncorePolicy,
    activity: Vec<Activity>,
    /// Per-core frequency traces (Figures 2 and 3 of the paper).
    traces: Vec<Trace>,
    tracing: bool,
}

impl FreqModel {
    /// Build the model for a machine under the given policies.
    pub fn new(spec: &MachineSpec, governor: Governor, uncore: UncorePolicy) -> FreqModel {
        if let Governor::Userspace(f) = governor {
            assert!(
                f >= spec.min_freq && f <= spec.turbo_table[0][0],
                "userspace frequency {} outside [{}, {}]",
                f,
                spec.min_freq,
                spec.turbo_table[0][0]
            );
        }
        if let UncorePolicy::Fixed(f) = uncore {
            assert!(
                f >= spec.uncore_range.0 - 1e-9 && f <= spec.uncore_range.1 + 1e-9,
                "uncore frequency {} outside {:?}",
                f,
                spec.uncore_range
            );
        }
        let cores = spec.core_count();
        FreqModel {
            name: spec.name.clone(),
            sockets: spec.sockets,
            cores,
            cores_per_socket: cores / spec.sockets,
            idle_freq: spec.idle_freq,
            light_cap: spec.light_freq_cap,
            base_freq: spec.base_freq,
            turbo_table: spec.turbo_table.clone(),
            uncore_range: spec.uncore_range,
            governor,
            uncore,
            activity: vec![Activity::Idle; cores as usize],
            traces: (0..cores)
                .map(|c| Trace::new(format!("core{}", c)))
                .collect(),
            tracing: false,
        }
    }

    /// Machine name this model was built for.
    pub fn machine(&self) -> &str {
        &self.name
    }

    /// Enable recording per-core frequency traces.
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    fn socket_of(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.cores_per_socket)
    }

    /// Number of non-idle cores on a socket.
    pub fn active_on_socket(&self, socket: SocketId) -> u32 {
        self.cores_on_socket(socket)
            .filter(|&c| self.activity[c.0 as usize] != Activity::Idle)
            .count() as u32
    }

    fn heavy_on_socket(&self, socket: SocketId) -> u32 {
        self.cores_on_socket(socket)
            .filter(|&c| matches!(self.activity[c.0 as usize], Activity::Heavy(_)))
            .count() as u32
    }

    fn cores_on_socket(&self, socket: SocketId) -> impl Iterator<Item = CoreId> + '_ {
        let start = socket.0 * self.cores_per_socket;
        (start..start + self.cores_per_socket).map(CoreId)
    }

    /// Worst (lowest-ceiling) license among heavy cores of a socket.
    fn socket_license(&self, socket: SocketId) -> License {
        self.cores_on_socket(socket)
            .filter_map(|c| match self.activity[c.0 as usize] {
                Activity::Heavy(l) => Some(l),
                _ => None,
            })
            .max()
            .unwrap_or(License::Normal)
    }

    fn ladder(&self, license: License, active: u32) -> f64 {
        let t = &self.turbo_table[license.index()];
        if active == 0 {
            return t[0];
        }
        let i = (active as usize - 1).min(t.len() - 1);
        t[i]
    }

    /// Record a core's new activity. Returns `true` if any frequency may
    /// have changed (callers then re-apply [`FreqModel::core_freq`] to the
    /// engine's resources).
    pub fn set_activity(&mut self, core: CoreId, activity: Activity) -> bool {
        let slot = &mut self.activity[core.0 as usize];
        if *slot == activity {
            return false;
        }
        *slot = activity;
        true
    }

    /// Current activity of a core.
    pub fn activity(&self, core: CoreId) -> Activity {
        self.activity[core.0 as usize]
    }

    /// Frequency of a core in GHz under the current governor and activity.
    pub fn core_freq(&self, core: CoreId) -> f64 {
        match self.governor {
            Governor::Userspace(f) => f,
            Governor::Performance { turbo } => {
                let socket = self.socket_of(core);
                let active = self.active_on_socket(socket);
                match self.activity[core.0 as usize] {
                    Activity::Idle => {
                        // The paper observes *all* cores clock up when heavy
                        // computation runs (shared voltage rail): idle cores
                        // follow the socket's heavy frequency.
                        if self.heavy_on_socket(socket) > 0 {
                            let lic = self.socket_license(socket);
                            if turbo {
                                self.ladder(lic, active)
                            } else {
                                self.base_freq
                            }
                        } else {
                            self.idle_freq
                        }
                    }
                    Activity::Light => {
                        let f = if turbo {
                            self.ladder(License::Normal, active)
                        } else {
                            self.base_freq
                        };
                        f.min(self.light_cap)
                    }
                    Activity::Heavy(lic) => {
                        if turbo {
                            self.ladder(lic, active)
                        } else {
                            // Without turbo, heavy AVX work can still force
                            // the clock below base (license floor).
                            self.base_freq.min(self.ladder(lic, active))
                        }
                    }
                }
            }
        }
    }

    /// Uncore frequency in GHz.
    pub fn uncore_freq(&self) -> f64 {
        match self.uncore {
            UncorePolicy::Fixed(f) => f,
            UncorePolicy::Auto => {
                let busy = (0..self.sockets).any(|s| self.active_on_socket(SocketId(s)) > 0);
                if busy {
                    self.uncore_range.1
                } else {
                    self.uncore_range.0
                }
            }
        }
    }

    /// Number of *heavy* cores across the machine — the signal used for the
    /// package-idle latency penalty (§3.2/§3.3: latency improves when
    /// computation runs beside communication).
    pub fn heavy_total(&self) -> u32 {
        (0..self.sockets)
            .map(|s| self.heavy_on_socket(SocketId(s)))
            .sum()
    }

    /// All core frequencies, indexed by core id.
    pub fn snapshot(&self) -> Vec<f64> {
        (0..self.cores).map(|c| self.core_freq(CoreId(c))).collect()
    }

    /// Record the current snapshot into the per-core traces at time `t`.
    pub fn record(&mut self, t: SimTime) {
        if !self.tracing {
            return;
        }
        let snap = self.snapshot();
        for (trace, f) in self.traces.iter_mut().zip(snap) {
            trace.record(t, f);
        }
    }

    /// Access a core's recorded frequency trace.
    pub fn trace(&self, core: CoreId) -> &Trace {
        &self.traces[core.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{henri, pyxis};

    fn model(gov: Governor) -> FreqModel {
        FreqModel::new(&henri(), gov, UncorePolicy::Auto)
    }

    #[test]
    fn userspace_pins_everything() {
        let mut m = model(Governor::Userspace(1.0));
        assert_eq!(m.core_freq(CoreId(0)), 1.0);
        m.set_activity(CoreId(0), Activity::Heavy(License::Avx512));
        assert_eq!(m.core_freq(CoreId(0)), 1.0);
        assert_eq!(m.core_freq(CoreId(35)), 1.0);
    }

    #[test]
    fn idle_cores_at_idle_freq() {
        let m = model(Governor::Performance { turbo: true });
        for c in 0..36 {
            assert_eq!(m.core_freq(CoreId(c)), 1.0);
        }
    }

    #[test]
    fn light_core_capped() {
        // The paper's communication core sits at 2.5 GHz on henri.
        let mut m = model(Governor::Performance { turbo: true });
        m.set_activity(CoreId(35), Activity::Light);
        assert_eq!(m.core_freq(CoreId(35)), 2.5);
    }

    #[test]
    fn single_heavy_core_turbos() {
        let mut m = model(Governor::Performance { turbo: true });
        m.set_activity(CoreId(0), Activity::Heavy(License::Normal));
        assert_eq!(m.core_freq(CoreId(0)), 3.7);
    }

    #[test]
    fn turbo_ladder_descends_with_active_cores() {
        let mut m = model(Governor::Performance { turbo: true });
        let mut last = f64::INFINITY;
        for n in 0..18u32 {
            m.set_activity(CoreId(n), Activity::Heavy(License::Normal));
            let f = m.core_freq(CoreId(0));
            assert!(f <= last, "ladder must not rise: {} > {}", f, last);
            last = f;
        }
        // 18 active cores on socket 0 → ladder tail.
        assert_eq!(last, 2.5);
    }

    #[test]
    fn avx512_four_vs_twenty_cores_matches_paper() {
        // Fig 3b: 4 AVX512 cores → 3.0 GHz. Fig 3c: 20 cores → 2.3 GHz
        // (the computing cores are pinned in logical order, so socket 0
        // fills first).
        let mut m = model(Governor::Performance { turbo: true });
        for c in 0..4 {
            m.set_activity(CoreId(c), Activity::Heavy(License::Avx512));
        }
        assert_eq!(m.core_freq(CoreId(0)), 3.0);
        for c in 4..20 {
            m.set_activity(CoreId(c), Activity::Heavy(License::Avx512));
        }
        // Socket 0 now has 18 heavy cores → AVX512 tail = 2.3 GHz.
        assert_eq!(m.core_freq(CoreId(0)), 2.3);
        // Socket 1 has 2 heavy cores → near the top of the AVX512 ladder.
        assert_eq!(m.core_freq(CoreId(19)), 3.0);
    }

    #[test]
    fn comm_core_unaffected_by_avx_on_same_socket() {
        // §3.3: cores executing AVX do not impact the communication core's
        // frequency (it holds its Normal-license ceiling, capped at 2.5).
        let mut m = model(Governor::Performance { turbo: true });
        m.set_activity(CoreId(17), Activity::Light);
        let before = m.core_freq(CoreId(17));
        for c in 0..17 {
            m.set_activity(CoreId(c), Activity::Heavy(License::Avx512));
        }
        let after = m.core_freq(CoreId(17));
        assert_eq!(before, 2.5);
        assert_eq!(after, 2.5);
    }

    #[test]
    fn idle_cores_follow_heavy_socket() {
        // Fig 2 (C): all cores clock up when 20 cores compute.
        let mut m = model(Governor::Performance { turbo: true });
        for c in 0..18 {
            m.set_activity(CoreId(c), Activity::Heavy(License::Normal));
        }
        // There is no idle core left on socket 0 in this loop — use 17 as
        // heavy and verify; instead check socket 1 idle cores stay idle.
        assert_eq!(m.core_freq(CoreId(20)), 1.0);
        // Reset one core to idle: it should follow the socket frequency.
        m.set_activity(CoreId(17), Activity::Idle);
        assert!(m.core_freq(CoreId(17)) >= 2.5);
    }

    #[test]
    fn no_turbo_holds_base() {
        let mut m = model(Governor::Performance { turbo: false });
        m.set_activity(CoreId(0), Activity::Heavy(License::Normal));
        assert_eq!(m.core_freq(CoreId(0)), 2.3);
        // AVX512 tail (2.3) does not exceed base either.
        for c in 1..18 {
            m.set_activity(CoreId(c), Activity::Heavy(License::Avx512));
        }
        assert!(m.core_freq(CoreId(0)) <= 2.3);
    }

    #[test]
    fn uncore_auto_follows_activity() {
        let mut m = model(Governor::Performance { turbo: true });
        assert_eq!(m.uncore_freq(), 1.2);
        m.set_activity(CoreId(3), Activity::Light);
        assert_eq!(m.uncore_freq(), 2.4);
        m.set_activity(CoreId(3), Activity::Idle);
        assert_eq!(m.uncore_freq(), 1.2);
    }

    #[test]
    fn uncore_fixed() {
        let m = FreqModel::new(
            &henri(),
            Governor::Performance { turbo: true },
            UncorePolicy::Fixed(1.2),
        );
        assert_eq!(m.uncore_freq(), 1.2);
    }

    #[test]
    fn heavy_total_counts_machine_wide() {
        let mut m = model(Governor::Performance { turbo: true });
        assert_eq!(m.heavy_total(), 0);
        m.set_activity(CoreId(0), Activity::Heavy(License::Normal));
        m.set_activity(CoreId(20), Activity::Heavy(License::Avx2));
        m.set_activity(CoreId(21), Activity::Light); // not heavy
        assert_eq!(m.heavy_total(), 2);
    }

    #[test]
    fn pyxis_is_flat() {
        // ThunderX2: no turbo ladder at all.
        let mut m = FreqModel::new(
            &pyxis(),
            Governor::Performance { turbo: true },
            UncorePolicy::Auto,
        );
        for c in 0..32 {
            m.set_activity(CoreId(c), Activity::Heavy(License::Normal));
        }
        assert_eq!(m.core_freq(CoreId(0)), 2.5);
    }

    #[test]
    fn tracing_records_changes() {
        let mut m = model(Governor::Performance { turbo: true });
        m.enable_tracing();
        m.record(SimTime::ZERO);
        m.set_activity(CoreId(0), Activity::Heavy(License::Normal));
        m.record(SimTime::from_millis(1));
        let tr = m.trace(CoreId(0));
        assert_eq!(tr.value_at(SimTime::ZERO), Some(1.0));
        assert_eq!(tr.value_at(SimTime::from_millis(1)), Some(3.7));
    }

    #[test]
    fn set_activity_reports_change() {
        let mut m = model(Governor::Performance { turbo: true });
        assert!(m.set_activity(CoreId(0), Activity::Light));
        assert!(!m.set_activity(CoreId(0), Activity::Light));
    }

    #[test]
    #[should_panic(expected = "userspace frequency")]
    fn userspace_out_of_range_panics() {
        let _ = model(Governor::Userspace(9.9));
    }

    #[test]
    fn license_ordering() {
        assert!(License::Normal < License::Avx2);
        assert!(License::Avx2 < License::Avx512);
        assert_eq!(License::Avx512.index(), 2);
    }
}
