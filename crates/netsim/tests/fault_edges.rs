//! Fault-window edge cases: zero-length windows, overlapping NIC stalls,
//! and windows that outlive a campaign point.
//!
//! The sweep drivers build a fresh world per point and install the point's
//! `FaultPlan` before traffic starts, so the interesting edges are (a)
//! degenerate windows must be rejected up front, (b) the stall bookkeeping
//! is a *counter*, so overlapping windows must nest rather than cancel
//! early, and (c) a window longer than the point's traffic must leave the
//! drained engine in a clean state and replay identically in a fresh world
//! (nothing leaks across points).

use freq::{Activity, FreqModel, Governor, UncorePolicy};
use memsim::MemSystem;
use netsim::{NetEvent, NetSim, NodeRef};
use simcore::{Engine, FaultPlan, FaultPlanError, SimTime};
use topology::{henri, CoreId, NumaId};

struct World {
    engine: Engine,
    mem: [MemSystem; 2],
    freqs: [FreqModel; 2],
    net: NetSim,
    comm_core: CoreId,
}

fn world() -> World {
    let spec = henri();
    let mut engine = Engine::new();
    let mem = [
        MemSystem::build(&mut engine, &spec, "n0."),
        MemSystem::build(&mut engine, &spec, "n1."),
    ];
    let comm_core = CoreId(35);
    let mut freqs = [
        FreqModel::new(&spec, Governor::Userspace(2.3), UncorePolicy::Fixed(2.4)),
        FreqModel::new(&spec, Governor::Userspace(2.3), UncorePolicy::Fixed(2.4)),
    ];
    for (f, m) in freqs.iter_mut().zip(&mem) {
        f.set_activity(comm_core, Activity::Light);
        m.apply_freqs(&mut engine, f);
    }
    let net = NetSim::build(&mut engine, &spec);
    World {
        engine,
        mem,
        freqs,
        net,
        comm_core,
    }
}

/// Drive one message to delivery; returns its latency.
fn one_way(w: &mut World, size: usize, buffer: u64) -> SimTime {
    let start = w.engine.now();
    let id = {
        let n0 = NodeRef {
            mem: &w.mem[0],
            freqs: &w.freqs[0],
            comm_core: w.comm_core,
        };
        w.net
            .start_send(&mut w.engine, 0, 1, &n0, size, NumaId(0), NumaId(0), buffer)
    };
    w.net.recv_ready(&mut w.engine, id);
    loop {
        let ev = w.engine.next().expect("progress");
        if w.net.owns(ev.tag()) {
            let (mem, freqs, cc) = (&w.mem, &w.freqs, w.comm_core);
            let nodes = |i: usize| NodeRef {
                mem: &mem[i],
                freqs: &freqs[i],
                comm_core: cc,
            };
            for out in w.net.on_event(&mut w.engine, nodes, &ev) {
                if matches!(out, NetEvent::Delivered { .. }) {
                    return w.engine.now() - start;
                }
                assert!(
                    !matches!(out, NetEvent::Failed { .. }),
                    "no drops configured, transfer cannot fail"
                );
            }
        }
    }
}

/// Pump the engine until no events remain (window edges included).
fn drain(w: &mut World) {
    while let Some(ev) = w.engine.next() {
        if w.net.owns(ev.tag()) {
            let (mem, freqs, cc) = (&w.mem, &w.freqs, w.comm_core);
            let nodes = |i: usize| NodeRef {
                mem: &mem[i],
                freqs: &freqs[i],
                comm_core: cc,
            };
            let _ = w.net.on_event(&mut w.engine, nodes, &ev);
        }
    }
}

const SIZE: usize = 16 << 20; // rendezvous-sized, ~1.6 ms healthy

#[test]
fn zero_length_windows_are_rejected_not_installed() {
    let mut w = world();
    let t = SimTime::from_millis(1);
    for plan in [
        FaultPlan::new(0).with_nic_stall(t, t),
        FaultPlan::new(0).with_nic_stall(t, t - SimTime::PS),
        FaultPlan::new(0).with_link_degradation(t, t, 0.5),
    ] {
        let err = w.net.apply_faults(&mut w.engine, &plan).unwrap_err();
        assert!(matches!(err, FaultPlanError::EmptyWindow { .. }), "{}", err);
    }
    // The rejected plans must not have scheduled anything: the world still
    // behaves exactly like a healthy one.
    let healthy = {
        let mut h = world();
        one_way(&mut h, SIZE, 1)
    };
    assert_eq!(one_way(&mut w, SIZE, 1), healthy);
}

#[test]
fn one_picosecond_window_is_valid() {
    let mut w = world();
    let t = SimTime::from_micros(10);
    let plan = FaultPlan::new(0).with_nic_stall(t, t + SimTime::PS);
    w.net.apply_faults(&mut w.engine, &plan).unwrap();
    // Must install, run and complete; a 1 ps stall is unmeasurable noise.
    let lat = one_way(&mut w, SIZE, 1);
    assert!(lat.as_secs_f64() > 0.0);
    drain(&mut w);
}

#[test]
fn overlapping_nic_stalls_nest_like_their_union() {
    // [10 µs, 5 ms) ∪ [2 ms, 8 ms) — the first window's end falls inside
    // the second, so a boolean "stalled" flag would resume the NIC 3 ms
    // early. The counter implementation must behave exactly like the
    // merged window [10 µs, 8 ms).
    let t0 = SimTime::from_micros(10);
    let overlapping = {
        let mut w = world();
        let plan = FaultPlan::new(0)
            .with_nic_stall(t0, SimTime::from_millis(5))
            .with_nic_stall(SimTime::from_millis(2), SimTime::from_millis(8));
        w.net.apply_faults(&mut w.engine, &plan).unwrap();
        let lat = one_way(&mut w, SIZE, 1);
        drain(&mut w);
        lat
    };
    let merged = {
        let mut w = world();
        let plan = FaultPlan::new(0).with_nic_stall(t0, SimTime::from_millis(8));
        w.net.apply_faults(&mut w.engine, &plan).unwrap();
        let lat = one_way(&mut w, SIZE, 1);
        drain(&mut w);
        lat
    };
    assert_eq!(overlapping, merged, "overlapping stalls must nest");
    // And the stall really held for the union: the transfer cannot have
    // finished before the merged window closed.
    assert!(overlapping >= SimTime::from_millis(8) - t0);
}

#[test]
fn window_outliving_the_point_drains_clean_and_replays() {
    // A degradation window far longer than the point's traffic: the
    // transfer completes inside the window, the point drains the engine
    // (consuming the far-future window edges), and a fresh world running
    // the same plan — the next campaign point — reproduces the latency
    // bit for bit. Nothing about the open window leaks across points.
    let plan = FaultPlan::new(0).with_link_degradation(
        SimTime::ZERO,
        SimTime::SEC * 10, // ~4 orders of magnitude past the transfer
        0.25,
    );
    let run_point = || {
        let mut w = world();
        w.net.apply_faults(&mut w.engine, &plan).unwrap();
        let lat = one_way(&mut w, SIZE, 1);
        drain(&mut w);
        assert!(w.engine.next().is_none(), "drained engine stays empty");
        lat
    };
    let first = run_point();
    let second = run_point();
    assert_eq!(first, second, "points must not contaminate each other");

    // The degraded transfer is materially slower than healthy — the long
    // window was actually open while the traffic ran.
    let healthy = {
        let mut w = world();
        one_way(&mut w, SIZE, 1)
    };
    assert!(
        first.as_secs_f64() > healthy.as_secs_f64() * 1.5,
        "healthy {:?} degraded {:?}",
        healthy,
        first
    );

    // After the window closes inside one long-lived world, capacities are
    // restored: a warm transfer then matches the healthy warm latency.
    let mut w = world();
    let short = FaultPlan::new(0).with_link_degradation(
        SimTime::ZERO,
        SimTime::from_millis(30),
        0.25,
    );
    w.net.apply_faults(&mut w.engine, &short).unwrap();
    let _ = one_way(&mut w, SIZE, 1); // rides the degraded wire
    drain(&mut w); // closes the window
    let restored = one_way(&mut w, SIZE, 2);
    let warm_healthy = {
        let mut h = world();
        let _ = one_way(&mut h, SIZE, 1);
        one_way(&mut h, SIZE, 2)
    };
    assert_eq!(restored, warm_healthy, "caps must be restored exactly");
}
