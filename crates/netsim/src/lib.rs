//! # netsim — NIC and fabric simulation
//!
//! Models the network path between two nodes:
//!
//! * **eager protocol** (small messages): the communication *core* copies
//!   the payload into the NIC with programmed I/O — the bytes cross the
//!   sender's memory path at a CPU-copy rate that scales with the
//!   communication core's frequency (this is why core frequency moves
//!   latency in Figure 1a);
//! * **rendezvous protocol** (large messages): an RTS/CTS handshake, then
//!   the NIC's DMA engines stream the payload directly from memory — the
//!   bytes never touch the CPU (why bandwidth is frequency-insensitive in
//!   Figure 1b), but they *do* share the memory controllers and NUMA links
//!   with computation (the whole of §4);
//! * a **registration cache** (pin-down cache, Tezuka et al.): first use of
//!   a buffer pays a pinning cost, reused ping-pong buffers hit the cache;
//! * per-message **software overhead** (the `o` of LogP) as cycles on the
//!   communication core, plus a few control-path memory transactions whose
//!   latency inflates under congestion;
//! * the paper's counter-intuitive *package-idle penalty*: with no heavy
//!   compute anywhere, uncore power management adds a fixed latency — so
//!   latency measured beside computation is slightly *better* (§3.2, §3.3).

#![warn(missing_docs)]

use std::collections::HashSet;

use freq::FreqModel;
use memsim::{MemSystem, Requester};
use simcore::{kind_index, split_kind_index, tag, tags, Engine, FlowSpec, ResourceId, SimTime};
use topology::{CoreId, MachineSpec, NetworkSpec, NumaId};

/// Bytes a communication core moves per cycle in the PIO copy path.
const PIO_BYTES_PER_CYCLE: f64 = 4.0;

/// How strongly the uncore frequency scales the NIC DMA path: the paper
/// measures 10.1 vs 10.5 GB/s across the whole uncore range (§3.1).
const DMA_UNCORE_SPAN: f64 = 0.04;

/// Heavy-core count at which the package-idle latency penalty has fully
/// vanished.
const IDLE_PENALTY_FADE_CORES: f64 = 4.0;

/// Identifies an in-flight transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransferId(pub u32);

/// Per-node context netsim needs when driving a transfer.
pub struct NodeRef<'a> {
    /// The node's memory system.
    pub mem: &'a MemSystem,
    /// The node's frequency model.
    pub freqs: &'a FreqModel,
    /// Core running the communication thread.
    pub comm_core: CoreId,
}

/// Events surfaced to the message-passing layer.
#[derive(Clone, Debug)]
pub enum NetEvent {
    /// The sender finished pushing the payload (eager copy done or DMA
    /// drained). `sender_elapsed` is the time since `start_send` — the
    /// quantity behind the paper's "sending network bandwidth" profile
    /// (Figure 10).
    SendComplete {
        /// Transfer.
        id: TransferId,
        /// Time from `start_send` to the last byte leaving the sender.
        sender_elapsed: SimTime,
    },
    /// The payload arrived and receive-side processing finished.
    Delivered {
        /// Transfer.
        id: TransferId,
    },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Step {
    SendOverhead = 0,
    SendCtrl = 1,
    Registration = 2,
    EagerWire = 3,
    EagerPayload = 4,
    RtsArrived = 5,
    CtsArrived = 6,
    DmaDone = 7,
    RecvOverhead = 8,
    RecvCtrl = 9,
}

impl Step {
    fn from_u32(v: u32) -> Step {
        match v {
            0 => Step::SendOverhead,
            1 => Step::SendCtrl,
            2 => Step::Registration,
            3 => Step::EagerWire,
            4 => Step::EagerPayload,
            5 => Step::RtsArrived,
            6 => Step::CtsArrived,
            7 => Step::DmaDone,
            8 => Step::RecvOverhead,
            9 => Step::RecvCtrl,
            _ => unreachable!("bad step"),
        }
    }
}

struct Transfer {
    from: usize,
    size: usize,
    data_numa: NumaId,
    dest_numa: NumaId,
    buffer: u64,
    started: SimTime,
    send_done: Option<SimTime>,
    recv_ready: bool,
    awaiting_recv: bool,
}

/// The two-node network simulator.
pub struct NetSim {
    cfg: NetworkSpec,
    /// NIC egress (DMA/PIO injection) resource per node.
    nic_tx: [ResourceId; 2],
    /// NIC ingress resource per node.
    nic_rx: [ResourceId; 2],
    /// Wire, per direction `[0→1, 1→0]`.
    wire: [ResourceId; 2],
    transfers: Vec<Option<Transfer>>,
    reg_cache: [HashSet<u64>; 2],
    lat_mult: f64,
    bw_mult: f64,
    idle_penalty_s: f64,
}

impl NetSim {
    /// Build NIC + wire resources for a two-node fabric of `spec` machines.
    pub fn build(engine: &mut Engine, spec: &MachineSpec) -> NetSim {
        let cfg = spec.network.clone();
        let nic_tx = [
            engine.add_resource("n0.nic_tx", cfg.dma_bw),
            engine.add_resource("n1.nic_tx", cfg.dma_bw),
        ];
        let nic_rx = [
            engine.add_resource("n0.nic_rx", cfg.dma_bw),
            engine.add_resource("n1.nic_rx", cfg.dma_bw),
        ];
        let wire = [
            engine.add_resource("wire.0to1", cfg.link_bw),
            engine.add_resource("wire.1to0", cfg.link_bw),
        ];
        NetSim {
            cfg,
            nic_tx,
            nic_rx,
            wire,
            transfers: Vec::new(),
            reg_cache: [HashSet::new(), HashSet::new()],
            lat_mult: 1.0,
            bw_mult: 1.0,
            idle_penalty_s: spec.idle_uncore_penalty_s,
        }
    }

    /// Network parameters in use.
    pub fn config(&self) -> &NetworkSpec {
        &self.cfg
    }

    /// Set this run's jitter multipliers (drawn by the benchmark harness
    /// from a seeded stream) and refresh wire/NIC capacities.
    pub fn set_jitter(&mut self, engine: &mut Engine, lat_mult: f64, bw_mult: f64) {
        assert!(lat_mult > 0.0 && bw_mult > 0.0);
        self.lat_mult = lat_mult;
        self.bw_mult = bw_mult;
        for w in self.wire {
            engine.set_capacity(w, self.cfg.link_bw * bw_mult);
        }
        for n in 0..2 {
            engine.set_capacity(self.nic_tx[n], self.cfg.dma_bw * bw_mult);
            engine.set_capacity(self.nic_rx[n], self.cfg.dma_bw * bw_mult);
        }
    }

    /// Scale the DMA path with each node's uncore frequency (the ±4 %
    /// bandwidth effect of §3.1).
    pub fn apply_uncore(&self, engine: &mut Engine, spec: &MachineSpec, uncore: [f64; 2]) {
        for (n, &u) in uncore.iter().enumerate() {
            let (lo, hi) = spec.uncore_range;
            let t = ((u - lo) / (hi - lo)).clamp(0.0, 1.0);
            let cap = self.cfg.dma_bw * self.bw_mult * (1.0 - DMA_UNCORE_SPAN * (1.0 - t));
            engine.set_capacity(self.nic_tx[n], cap);
            engine.set_capacity(self.nic_rx[n], cap);
        }
    }

    /// Drop both registration caches (ablation hook).
    pub fn clear_reg_cache(&mut self) {
        self.reg_cache[0].clear();
        self.reg_cache[1].clear();
    }

    fn step_tag(&self, id: TransferId, step: Step) -> u64 {
        tag(tags::ns::NET, kind_index(step as u32, id.0))
    }

    /// True if an event tag belongs to netsim.
    pub fn owns(&self, event_tag: u64) -> bool {
        simcore::namespace(event_tag) == tags::ns::NET
    }

    /// Package-idle latency penalty given machine-wide heavy-core count.
    fn idle_penalty(&self, heavy_total: u32) -> SimTime {
        let fade = (1.0 - heavy_total as f64 / IDLE_PENALTY_FADE_CORES).max(0.0);
        SimTime::from_secs_f64(self.idle_penalty_s * fade * self.lat_mult)
    }

    /// Begin a send of `size` bytes from `from_node`'s `data_numa` to the
    /// other node's `dest_numa`. `buffer` keys the registration cache.
    pub fn start_send(
        &mut self,
        engine: &mut Engine,
        from_node: usize,
        from: &NodeRef<'_>,
        size: usize,
        data_numa: NumaId,
        dest_numa: NumaId,
        buffer: u64,
    ) -> TransferId {
        let id = TransferId(self.transfers.len() as u32);
        self.transfers.push(Some(Transfer {
            from: from_node,
            size,
            data_numa,
            dest_numa,
            buffer,
            started: engine.now(),
            send_done: None,
            recv_ready: false,
            awaiting_recv: false,
        }));
        // Step 1: software overhead — cycles on the communication core.
        let cycles = self.cfg.sw_overhead_cycles * 0.5;
        engine.start_flow(FlowSpec {
            path: vec![from.mem.core_resource(from.comm_core)],
            volume: cycles,
            weight: 1.0,
            cap: None,
            tag: self.step_tag(id, Step::SendOverhead),
        });
        id
    }

    /// The receiver posted a matching receive: rendezvous transfers waiting
    /// for the CTS may proceed.
    pub fn recv_ready(&mut self, engine: &mut Engine, id: TransferId) {
        // Eager transfers may already have completed and retired; posting
        // the receive afterwards is then a no-op.
        let Some(t) = self.transfers[id.0 as usize].as_mut() else {
            return;
        };
        t.recv_ready = true;
        if t.awaiting_recv {
            t.awaiting_recv = false;
            self.send_cts(engine, id);
        }
    }

    fn send_cts(&mut self, engine: &mut Engine, id: TransferId) {
        // CTS crosses the wire back to the sender.
        let lat = SimTime::from_secs_f64(self.cfg.wire_latency_s * self.lat_mult);
        engine.after(lat, self.step_tag(id, Step::CtsArrived));
    }

    /// Advance a transfer on one of our events. `nodes[i]` is the context
    /// of node `i`. Returns surfaced events (send-complete / delivered).
    pub fn on_event(
        &mut self,
        engine: &mut Engine,
        nodes: [&NodeRef<'_>; 2],
        event: &simcore::Event,
    ) -> Vec<NetEvent> {
        debug_assert!(self.owns(event.tag()));
        let (step_raw, tid) = split_kind_index(simcore::payload(event.tag()));
        let step = Step::from_u32(step_raw);
        let id = TransferId(tid);
        let mut out = Vec::new();

        let (from, size, data_numa, dest_numa, buffer) = {
            let t = self.transfers[tid as usize].as_ref().expect("live transfer");
            (t.from, t.size, t.data_numa, t.dest_numa, t.buffer)
        };
        let to = 1 - from;
        let sender = nodes[from];
        let receiver = nodes[to];

        match step {
            Step::SendOverhead => {
                // Control transactions (doorbell to the NIC) with
                // congestion-inflated latency, plus the package-idle penalty.
                let per_access = sender.mem.control_latency(
                    engine,
                    Requester::Core(sender.comm_core),
                    sender.mem.spec().nic_numa,
                );
                let mut d = per_access * (self.cfg.ctrl_accesses * 0.5 * self.lat_mult);
                d += self.idle_penalty(sender.freqs.heavy_total());
                engine.after(d, self.step_tag(id, Step::SendCtrl));
            }
            Step::SendCtrl => {
                if size <= self.cfg.eager_threshold {
                    // Eager: wire latency, then the PIO-paced payload.
                    let lat = SimTime::from_secs_f64(self.cfg.wire_latency_s * self.lat_mult);
                    engine.after(lat, self.step_tag(id, Step::EagerWire));
                } else {
                    // Rendezvous: register the buffer if needed.
                    if self.reg_cache[from].insert(buffer) {
                        let cost = SimTime::from_secs_f64(
                            (self.cfg.reg_base_s + self.cfg.reg_per_byte_s * size as f64)
                                * self.lat_mult,
                        );
                        engine.after(cost, self.step_tag(id, Step::Registration));
                    } else {
                        self.send_rts(engine, id);
                    }
                }
            }
            Step::Registration => {
                self.send_rts(engine, id);
            }
            Step::EagerWire => {
                // PIO copy: payload crosses sender memory path, NIC, wire,
                // receiver NIC and receiver memory, paced by the CPU copy.
                let f = sender.freqs.core_freq(sender.comm_core);
                let cap = PIO_BYTES_PER_CYCLE * f * 1e9;
                let mut path = sender.mem.path(Requester::Core(sender.comm_core), data_numa);
                path.push(self.nic_tx[from]);
                path.push(self.wire[from]);
                path.push(self.nic_rx[to]);
                path.extend(receiver.mem.path(Requester::Nic, dest_numa));
                engine.start_flow(FlowSpec {
                    path,
                    volume: (size as f64).max(1.0),
                    weight: 1.0,
                    cap: Some(cap),
                    tag: self.step_tag(id, Step::EagerPayload),
                });
            }
            Step::EagerPayload => {
                let t = self.transfers[tid as usize].as_mut().expect("live transfer");
                t.send_done = Some(engine.now());
                out.push(NetEvent::SendComplete {
                    id,
                    sender_elapsed: engine.now() - t.started,
                });
                engine.start_flow(FlowSpec {
                    path: vec![receiver.mem.core_resource(receiver.comm_core)],
                    volume: self.cfg.sw_overhead_cycles * 0.5,
                    weight: 1.0,
                    cap: None,
                    tag: self.step_tag(id, Step::RecvOverhead),
                });
            }
            Step::RtsArrived => {
                let t = self.transfers[tid as usize].as_mut().expect("live transfer");
                if t.recv_ready {
                    self.send_cts(engine, id);
                } else {
                    t.awaiting_recv = true;
                }
            }
            Step::CtsArrived => {
                // DMA: the NIC pulls from sender memory and pushes into
                // receiver memory; the weight reflects the NIC's
                // outstanding-request aggressiveness.
                let mut path = sender.mem.path(Requester::Nic, data_numa);
                path.push(self.nic_tx[from]);
                path.push(self.wire[from]);
                path.push(self.nic_rx[to]);
                path.extend(receiver.mem.path(Requester::Nic, dest_numa));
                engine.start_flow(FlowSpec {
                    path,
                    volume: size as f64,
                    weight: self.cfg.nic_dma_weight,
                    cap: None,
                    tag: self.step_tag(id, Step::DmaDone),
                });
            }
            Step::DmaDone => {
                let t = self.transfers[tid as usize].as_mut().expect("live transfer");
                t.send_done = Some(engine.now());
                out.push(NetEvent::SendComplete {
                    id,
                    sender_elapsed: engine.now() - t.started,
                });
                engine.start_flow(FlowSpec {
                    path: vec![receiver.mem.core_resource(receiver.comm_core)],
                    volume: self.cfg.sw_overhead_cycles * 0.5,
                    weight: 1.0,
                    cap: None,
                    tag: self.step_tag(id, Step::RecvOverhead),
                });
            }
            Step::RecvOverhead => {
                // Completion handling is NIC-side control traffic (CQ on
                // the NIC's NUMA node), not a DRAM access.
                let per_access = receiver.mem.control_latency(
                    engine,
                    Requester::Core(receiver.comm_core),
                    receiver.mem.spec().nic_numa,
                );
                // The idle penalty is a per-message effect; it was already
                // charged on the send side.
                let d = per_access * (self.cfg.ctrl_accesses * 0.5 * self.lat_mult);
                engine.after(d, self.step_tag(id, Step::RecvCtrl));
            }
            Step::RecvCtrl => {
                self.transfers[tid as usize] = None;
                out.push(NetEvent::Delivered { id });
            }
        }
        let _ = buffer;
        out
    }

    fn send_rts(&mut self, engine: &mut Engine, id: TransferId) {
        // RTS crosses the wire.
        let lat = SimTime::from_secs_f64(self.cfg.wire_latency_s * self.lat_mult);
        engine.after(lat, self.step_tag(id, Step::RtsArrived));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freq::{Activity, Governor, UncorePolicy};
    use topology::henri;

    struct World {
        engine: Engine,
        mem: [MemSystem; 2],
        freqs: [FreqModel; 2],
        net: NetSim,
        comm_core: CoreId,
    }

    fn world() -> World {
        world_with_comm_core(CoreId(35))
    }

    fn world_with_comm_core(comm_core: CoreId) -> World {
        let spec = henri();
        let mut engine = Engine::new();
        let mem = [
            MemSystem::build(&mut engine, &spec, "n0."),
            MemSystem::build(&mut engine, &spec, "n1."),
        ];
        let mut freqs = [
            FreqModel::new(&spec, Governor::Userspace(2.3), UncorePolicy::Fixed(2.4)),
            FreqModel::new(&spec, Governor::Userspace(2.3), UncorePolicy::Fixed(2.4)),
        ];
        for (f, m) in freqs.iter_mut().zip(&mem) {
            f.set_activity(comm_core, Activity::Light);
            m.apply_freqs(&mut engine, f);
        }
        let net = NetSim::build(&mut engine, &spec);
        World {
            engine,
            mem,
            freqs,
            net,
            comm_core,
        }
    }

    /// Drive one message through; returns (delivery_latency, send_elapsed).
    fn one_way(w: &mut World, size: usize, buffer: u64) -> (SimTime, SimTime) {
        let start = w.engine.now();
        let id = {
            let n0 = NodeRef {
                mem: &w.mem[0],
                freqs: &w.freqs[0],
                comm_core: w.comm_core,
            };
            w.net
                .start_send(&mut w.engine, 0, &n0, size, NumaId(0), NumaId(0), buffer)
        };
        w.net.recv_ready(&mut w.engine, id);
        let mut delivered = None;
        let mut send_el = None;
        while delivered.is_none() {
            let ev = w.engine.next().expect("progress");
            if w.net.owns(ev.tag()) {
                let n0 = NodeRef {
                    mem: &w.mem[0],
                    freqs: &w.freqs[0],
                    comm_core: w.comm_core,
                };
                let n1 = NodeRef {
                    mem: &w.mem[1],
                    freqs: &w.freqs[1],
                    comm_core: w.comm_core,
                };
                for out in w.net.on_event(&mut w.engine, [&n0, &n1], &ev) {
                    match out {
                        NetEvent::SendComplete { sender_elapsed, .. } => {
                            send_el = Some(sender_elapsed)
                        }
                        NetEvent::Delivered { .. } => delivered = Some(w.engine.now()),
                    }
                }
            }
        }
        (delivered.unwrap() - start, send_el.unwrap())
    }

    #[test]
    fn small_message_latency_near_paper_point() {
        // 4 B at 2.3 GHz fixed: the paper measures 1.8 µs on henri.
        // Communication thread near the NIC (last core of NUMA 0).
        let mut w = world_with_comm_core(CoreId(8));
        let (lat, _) = one_way(&mut w, 4, 1);
        let us = lat.as_micros_f64();
        assert!((1.5..2.2).contains(&us), "latency {} µs", us);
    }

    #[test]
    fn far_comm_thread_adds_numa_latency() {
        // Fig 5 baselines: 1.39 µs (near) vs 1.67 µs (far) — ~0.3 µs apart.
        let mut near = world_with_comm_core(CoreId(8));
        let mut far = world_with_comm_core(CoreId(35));
        let (ln, _) = one_way(&mut near, 4, 1);
        let (lf, _) = one_way(&mut far, 4, 1);
        let delta = lf.as_micros_f64() - ln.as_micros_f64();
        assert!((0.1..0.6).contains(&delta), "delta {} µs", delta);
    }

    #[test]
    fn latency_increases_at_low_frequency() {
        // Paper: 3.1 µs at 1 GHz vs 1.8 µs at 2.3 GHz (+72 %).
        let spec = henri();
        let lat_at = |ghz: f64| {
            let mut w = world();
            for f in &mut w.freqs {
                *f = FreqModel::new(&spec, Governor::Userspace(ghz), UncorePolicy::Fixed(2.4));
                f.set_activity(w.comm_core, Activity::Light);
            }
            for i in 0..2 {
                w.mem[i].apply_freqs(&mut w.engine, &w.freqs[i]);
            }
            one_way(&mut w, 4, 1).0.as_micros_f64()
        };
        let slow = lat_at(1.0);
        let fast = lat_at(2.3);
        assert!(slow > fast * 1.5, "slow {} fast {}", slow, fast);
    }

    #[test]
    fn large_message_bandwidth_near_line_rate() {
        let mut w = world();
        let size = 64 * 1024 * 1024;
        // First send pays registration; repeat to hit the cache.
        let (_, _) = one_way(&mut w, size, 7);
        let (lat, _) = one_way(&mut w, size, 7);
        let bw = size as f64 / lat.as_secs_f64();
        // dma_bw is 10.8 GB/s; expect ≥ 90 % of it end to end.
        assert!(bw > 9.7e9, "bandwidth {} GB/s", bw / 1e9);
        assert!(bw < 12.0e9);
    }

    #[test]
    fn registration_cache_speeds_up_reuse() {
        let mut w = world();
        let size = 4 * 1024 * 1024;
        let (first, _) = one_way(&mut w, size, 42);
        let (second, _) = one_way(&mut w, size, 42);
        assert!(
            first.as_secs_f64() > second.as_secs_f64() + w.net.cfg.reg_base_s,
            "first {} second {}",
            first,
            second
        );
        // A different buffer pays registration again.
        let (third, _) = one_way(&mut w, size, 43);
        assert!(third > second);
    }

    #[test]
    fn eager_rendezvous_continuity() {
        // Latency should not jump wildly across the protocol threshold.
        let mut w = world();
        let thr = w.net.cfg.eager_threshold;
        let (below, _) = one_way(&mut w, thr - 64, 1);
        let (_, _) = one_way(&mut w, thr + 64, 2); // pays registration
        let (above, _) = one_way(&mut w, thr + 64, 2); // cached
        assert!(
            above.as_secs_f64() < below.as_secs_f64() * 2.0,
            "below {} above {}",
            below,
            above
        );
    }

    #[test]
    fn send_complete_precedes_delivery() {
        let mut w = world();
        let (lat, send_el) = one_way(&mut w, 1 << 20, 9);
        assert!(send_el < lat);
    }

    #[test]
    fn bandwidth_jitter_scales_rate() {
        let mut w = world();
        let size = 16 * 1024 * 1024;
        let (_, _) = one_way(&mut w, size, 5); // register
        let (base, _) = one_way(&mut w, size, 5);
        w.net.set_jitter(&mut w.engine, 1.0, 0.5);
        let (slowed, _) = one_way(&mut w, size, 5);
        assert!(slowed.as_secs_f64() > base.as_secs_f64() * 1.5);
    }

    #[test]
    fn uncore_scales_dma_capacity() {
        let mut w = world();
        let spec = henri();
        w.net.apply_uncore(&mut w.engine, &spec, [1.2, 1.2]);
        let size = 64 * 1024 * 1024;
        let (_, _) = one_way(&mut w, size, 3);
        let (low, _) = one_way(&mut w, size, 3);
        w.net.apply_uncore(&mut w.engine, &spec, [2.4, 2.4]);
        let (high, _) = one_way(&mut w, size, 3);
        let bw_low = size as f64 / low.as_secs_f64();
        let bw_high = size as f64 / high.as_secs_f64();
        // ~4 % effect, like the paper's 10.1 vs 10.5 GB/s.
        assert!(bw_high > bw_low * 1.02, "low {} high {}", bw_low, bw_high);
        assert!(bw_high < bw_low * 1.10);
    }

    #[test]
    fn rendezvous_waits_for_receiver() {
        // Without recv_ready the transfer must stall at the RTS.
        let mut w = world();
        let id = {
            let n0 = NodeRef {
                mem: &w.mem[0],
                freqs: &w.freqs[0],
                comm_core: w.comm_core,
            };
            w.net
                .start_send(&mut w.engine, 0, &n0, 1 << 20, NumaId(0), NumaId(0), 77)
        };
        let mut delivered = false;
        let drain = |w: &mut World, delivered: &mut bool| {
            while let Some(ev) = w.engine.next() {
                if w.net.owns(ev.tag()) {
                    let n0 = NodeRef {
                        mem: &w.mem[0],
                        freqs: &w.freqs[0],
                        comm_core: w.comm_core,
                    };
                    let n1 = NodeRef {
                        mem: &w.mem[1],
                        freqs: &w.freqs[1],
                        comm_core: w.comm_core,
                    };
                    for out in w.net.on_event(&mut w.engine, [&n0, &n1], &ev) {
                        if matches!(out, NetEvent::Delivered { .. }) {
                            *delivered = true;
                        }
                    }
                }
            }
        };
        drain(&mut w, &mut delivered);
        assert!(!delivered, "must wait for the receive to be posted");
        w.net.recv_ready(&mut w.engine, id);
        drain(&mut w, &mut delivered);
        assert!(delivered);
    }
}
