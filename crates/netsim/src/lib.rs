//! # netsim — NIC and fabric simulation
//!
//! Models the network path between the nodes of a routed fabric (the
//! degenerate two-node "direct" fabric is the paper's original wire; see
//! `topology::fabric` for switch/torus/dragonfly). Each directed fabric
//! link is one fluid resource, so a payload flow traverses sender memory →
//! NIC TX → every link of its route → NIC RX → receiver memory and shares
//! each hop through the max-min allocator. Per message:
//!
//! * **eager protocol** (small messages): the communication *core* copies
//!   the payload into the NIC with programmed I/O — the bytes cross the
//!   sender's memory path at a CPU-copy rate that scales with the
//!   communication core's frequency (this is why core frequency moves
//!   latency in Figure 1a);
//! * **rendezvous protocol** (large messages): an RTS/CTS handshake, then
//!   the NIC's DMA engines stream the payload directly from memory — the
//!   bytes never touch the CPU (why bandwidth is frequency-insensitive in
//!   Figure 1b), but they *do* share the memory controllers and NUMA links
//!   with computation (the whole of §4);
//! * a **registration cache** (pin-down cache, Tezuka et al.): first use of
//!   a buffer pays a pinning cost, reused ping-pong buffers hit the cache;
//! * per-message **software overhead** (the `o` of LogP) as cycles on the
//!   communication core, plus a few control-path memory transactions whose
//!   latency inflates under congestion;
//! * the paper's counter-intuitive *package-idle penalty*: with no heavy
//!   compute anywhere, uncore power management adds a fixed latency — so
//!   latency measured beside computation is slightly *better* (§3.2, §3.3).

#![warn(missing_docs)]

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use freq::FreqModel;
use memsim::{MemSystem, Requester};
use simcore::faults::{FaultPlan, FaultPlanError, STREAM_DROP_CTS, STREAM_DROP_RTS};
use simcore::telemetry::{self, Lane};
use simcore::{
    kind_index, split_kind_index, tag, tags, Engine, FlowSpec, Pcg32, ResourceId, SimTime,
};
use topology::fabric::{Fabric, FabricSpec};
use topology::{CoreId, MachineSpec, NetworkSpec, NumaId};

/// Bytes a communication core moves per cycle in the PIO copy path.
const PIO_BYTES_PER_CYCLE: f64 = 4.0;

/// Wire bytes of one rendezvous control message (RTS or CTS), counted when a
/// retransmission occurs.
pub const CTRL_MSG_BYTES: u64 = 64;

/// Default retransmission cap before a transfer is declared failed.
pub const DEFAULT_MAX_RETRIES: u32 = 8;

/// How strongly the uncore frequency scales the NIC DMA path: the paper
/// measures 10.1 vs 10.5 GB/s across the whole uncore range (§3.1).
const DMA_UNCORE_SPAN: f64 = 0.04;

/// Heavy-core count at which the package-idle latency penalty has fully
/// vanished.
const IDLE_PENALTY_FADE_CORES: f64 = 4.0;

/// When set, simulators built afterwards skip the interned wire-slot arena
/// and resolve each transfer's route per hop (the pre-interning path).
/// Equivalence pin for `tests/collective_equiv.rs`, mirroring
/// `simcore::queue::FORCE_HEAP`: snapshot at [`NetSim::build_fabric`] time.
pub static FORCE_ROUTE_LOOKUP: AtomicBool = AtomicBool::new(false);

/// Identifies an in-flight transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransferId(pub u32);

/// Per-node context netsim needs when driving a transfer.
pub struct NodeRef<'a> {
    /// The node's memory system.
    pub mem: &'a MemSystem,
    /// The node's frequency model.
    pub freqs: &'a FreqModel,
    /// Core running the communication thread.
    pub comm_core: CoreId,
}

/// Events surfaced to the message-passing layer.
#[derive(Clone, Debug)]
pub enum NetEvent {
    /// The sender finished pushing the payload (eager copy done or DMA
    /// drained). `sender_elapsed` is the time since `start_send` — the
    /// quantity behind the paper's "sending network bandwidth" profile
    /// (Figure 10).
    SendComplete {
        /// Transfer.
        id: TransferId,
        /// Time from `start_send` to the last byte leaving the sender.
        sender_elapsed: SimTime,
    },
    /// The payload arrived and receive-side processing finished.
    Delivered {
        /// Transfer.
        id: TransferId,
    },
    /// The rendezvous handshake exhausted its retransmission budget (only
    /// possible under an injected [`FaultPlan`]); the transfer is abandoned.
    Failed {
        /// Transfer.
        id: TransferId,
        /// Retransmissions attempted before giving up.
        retries: u32,
    },
}

/// Per-transfer retransmission accounting, kept after the transfer retires
/// so the profiler can attribute retry costs per send.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Handshake retransmissions triggered by timeouts.
    pub retries: u32,
    /// Control-message bytes re-sent across the wire.
    pub retrans_bytes: u64,
    /// Simulated time spent waiting in expired retransmission timeouts.
    pub retry_wait: SimTime,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Step {
    SendOverhead = 0,
    SendCtrl = 1,
    Registration = 2,
    EagerWire = 3,
    EagerPayload = 4,
    RtsArrived = 5,
    CtsArrived = 6,
    DmaDone = 7,
    RecvOverhead = 8,
    RecvCtrl = 9,
    // Fault-injection steps. The per-transfer id slot carries the fault
    // window index for the first four, a transfer id for RtsTimeout.
    LinkFaultStart = 10,
    LinkFaultEnd = 11,
    NicStallStart = 12,
    NicStallEnd = 13,
    RtsTimeout = 14,
}

impl Step {
    fn from_u32(v: u32) -> Step {
        match v {
            0 => Step::SendOverhead,
            1 => Step::SendCtrl,
            2 => Step::Registration,
            3 => Step::EagerWire,
            4 => Step::EagerPayload,
            5 => Step::RtsArrived,
            6 => Step::CtsArrived,
            7 => Step::DmaDone,
            8 => Step::RecvOverhead,
            9 => Step::RecvCtrl,
            10 => Step::LinkFaultStart,
            11 => Step::LinkFaultEnd,
            12 => Step::NicStallStart,
            13 => Step::NicStallEnd,
            14 => Step::RtsTimeout,
            _ => unreachable!("bad step"),
        }
    }
}

struct Transfer {
    from: usize,
    to: usize,
    size: usize,
    data_numa: NumaId,
    dest_numa: NumaId,
    buffer: u64,
    started: SimTime,
    send_done: Option<SimTime>,
    recv_ready: bool,
    awaiting_recv: bool,
    /// The sender has issued at least one RTS.
    rts_sent: bool,
    /// An RTS reached the receiver.
    rts_arrived: bool,
    /// The receiver has issued at least one CTS.
    cts_sent: bool,
    /// A CTS reached the sender and the DMA is running (dedups retries).
    dma_started: bool,
    /// Retransmissions so far; bounds the exponential backoff.
    retries: u32,
    /// Current retransmission timeout (doubles per retry).
    rto: SimTime,
}

/// The fabric-wide network simulator.
pub struct NetSim {
    cfg: NetworkSpec,
    /// The routed fabric: link set + deterministic routing table.
    fabric: Fabric,
    /// NIC egress (DMA/PIO injection) resource per node.
    nic_tx: Vec<ResourceId>,
    /// NIC ingress resource per node.
    nic_rx: Vec<ResourceId>,
    /// One fluid resource per directed fabric link, in `fabric.links()`
    /// order.
    links: Vec<ResourceId>,
    /// Pre-resolved wire slots per `(from, to)` pair, pair-major:
    /// `[nic_tx[from], link resources.., nic_rx[to]]` — the exact middle
    /// segment both flow paths (PIO and DMA) splice in, so per-transfer
    /// setup is one slice copy instead of per-hop table lookups. Empty
    /// (both vecs) when [`FORCE_ROUTE_LOOKUP`] pinned the build.
    wire_arena: Vec<ResourceId>,
    /// `wire_spans[from * nodes + to]` slices `wire_arena`.
    wire_spans: Vec<(u32, u32)>,
    transfers: Vec<Option<Transfer>>,
    /// Parallel to `transfers`, kept after retirement for the profiler.
    retry_stats: Vec<RetryStats>,
    reg_cache: Vec<HashSet<u64>>,
    lat_mult: f64,
    bw_mult: f64,
    idle_penalty_s: f64,
    /// Per-node DMA scale from the uncore frequency (managed by
    /// `apply_uncore`), composed with fault windows in `refresh_caps`.
    uncore_scale: Vec<f64>,
    /// Injected faults (empty plan when healthy).
    faults: FaultPlan,
    /// Which link-degradation windows are currently open.
    degradation_active: Vec<bool>,
    /// Open NIC-stall windows (stalls apply to both NICs).
    stalls_active: usize,
    /// Drop-decision streams, armed only when the plan drops messages so a
    /// healthy run's event stream is byte-identical to pre-fault builds.
    drop_rts_rng: Option<Pcg32>,
    drop_cts_rng: Option<Pcg32>,
    /// Base retransmission timeout (first retry; doubles per attempt).
    rto_base: SimTime,
    /// Retransmissions allowed before a transfer is declared failed.
    max_retries: u32,
}

impl NetSim {
    /// Build NIC + wire resources for the paper's two-node point-to-point
    /// fabric of `spec` machines (the degenerate [`FabricSpec::direct`]
    /// case — resource names and order are frozen by the golden traces).
    pub fn build(engine: &mut Engine, spec: &MachineSpec) -> NetSim {
        Self::build_fabric(engine, spec, FabricSpec::direct().build())
    }

    /// Build NIC resources for every node of `fabric` plus one fluid
    /// resource per directed fabric link.
    pub fn build_fabric(engine: &mut Engine, spec: &MachineSpec, fabric: Fabric) -> NetSim {
        let cfg = spec.network.clone();
        let n = fabric.nodes();
        let nic_tx: Vec<_> = (0..n)
            .map(|i| engine.add_resource(format!("n{}.nic_tx", i), cfg.dma_bw))
            .collect();
        let nic_rx: Vec<_> = (0..n)
            .map(|i| engine.add_resource(format!("n{}.nic_rx", i), cfg.dma_bw))
            .collect();
        let links: Vec<_> = fabric
            .links()
            .iter()
            .map(|l| engine.add_resource(&l.name, cfg.link_bw * l.bw_scale))
            .collect();
        // A generous default RTO: several wire round-trips, but far below
        // any experiment's total runtime.
        let rto_base = SimTime::from_secs_f64(cfg.wire_latency_s * 16.0).max(SimTime::US);
        let (wire_arena, wire_spans) = if FORCE_ROUTE_LOOKUP.load(Ordering::Relaxed) {
            (Vec::new(), Vec::new())
        } else {
            let mut arena = Vec::with_capacity(n * n * 3);
            let mut spans = Vec::with_capacity(n * n);
            for (from, &tx) in nic_tx.iter().enumerate() {
                for (to, &rx) in nic_rx.iter().enumerate() {
                    let start = arena.len() as u32;
                    arena.push(tx);
                    arena.extend(fabric.route(from, to).iter().map(|&l| links[l as usize]));
                    arena.push(rx);
                    spans.push((start, arena.len() as u32));
                }
            }
            (arena, spans)
        };
        NetSim {
            cfg,
            fabric,
            nic_tx,
            nic_rx,
            links,
            wire_arena,
            wire_spans,
            transfers: Vec::new(),
            retry_stats: Vec::new(),
            reg_cache: vec![HashSet::new(); n],
            lat_mult: 1.0,
            bw_mult: 1.0,
            idle_penalty_s: spec.idle_uncore_penalty_s,
            uncore_scale: vec![1.0; n],
            faults: FaultPlan::default(),
            degradation_active: Vec::new(),
            stalls_active: 0,
            drop_rts_rng: None,
            drop_cts_rng: None,
            rto_base,
            max_retries: DEFAULT_MAX_RETRIES,
        }
    }

    /// The routed fabric this simulator runs over.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Splice the `from → to` wire segment (`nic_tx`, route links,
    /// `nic_rx`) onto `path`: one interned slice copy normally, per-hop
    /// resolution when [`FORCE_ROUTE_LOOKUP`] pinned the build. Both paths
    /// produce the identical resource sequence.
    fn push_wire(&self, path: &mut Vec<ResourceId>, from: usize, to: usize) {
        if self.wire_spans.is_empty() {
            path.push(self.nic_tx[from]);
            path.extend(self.fabric.route(from, to).iter().map(|&l| self.links[l as usize]));
            path.push(self.nic_rx[to]);
            return;
        }
        telemetry::counter_add("net.route.intern_hit", 1);
        let (start, end) = self.wire_spans[from * self.nic_tx.len() + to];
        path.extend_from_slice(&self.wire_arena[start as usize..end as usize]);
    }

    /// Number of nodes on the fabric.
    pub fn nodes(&self) -> usize {
        self.nic_tx.len()
    }

    /// Network parameters in use.
    pub fn config(&self) -> &NetworkSpec {
        &self.cfg
    }

    /// Set this run's jitter multipliers (drawn by the benchmark harness
    /// from a seeded stream) and refresh wire/NIC capacities.
    pub fn set_jitter(&mut self, engine: &mut Engine, lat_mult: f64, bw_mult: f64) {
        assert!(lat_mult > 0.0 && bw_mult > 0.0);
        self.lat_mult = lat_mult;
        self.bw_mult = bw_mult;
        self.refresh_caps(engine);
    }

    /// Scale the DMA path with each node's uncore frequency (the ±4 %
    /// bandwidth effect of §3.1). `uncore` holds one frequency per node.
    pub fn apply_uncore(&mut self, engine: &mut Engine, spec: &MachineSpec, uncore: &[f64]) {
        assert_eq!(uncore.len(), self.uncore_scale.len());
        for (n, &u) in uncore.iter().enumerate() {
            let (lo, hi) = spec.uncore_range;
            let t = ((u - lo) / (hi - lo)).clamp(0.0, 1.0);
            self.uncore_scale[n] = 1.0 - DMA_UNCORE_SPAN * (1.0 - t);
        }
        self.refresh_caps(engine);
    }

    /// Recompute link and NIC capacities from the composition of jitter,
    /// uncore scaling and currently open fault windows.
    fn refresh_caps(&self, engine: &mut Engine) {
        let degrade: f64 = self
            .faults
            .link_degradations
            .iter()
            .zip(&self.degradation_active)
            .filter(|(_, &on)| on)
            .map(|(d, _)| d.factor)
            .product();
        for (w, l) in self.links.iter().zip(self.fabric.links()) {
            engine.set_capacity(*w, self.cfg.link_bw * l.bw_scale * self.bw_mult * degrade);
        }
        let nic_mult = if self.stalls_active > 0 { 0.0 } else { 1.0 };
        for n in 0..self.nic_tx.len() {
            let cap = self.cfg.dma_bw * self.bw_mult * self.uncore_scale[n] * nic_mult;
            engine.set_capacity(self.nic_tx[n], cap);
            engine.set_capacity(self.nic_rx[n], cap);
        }
    }

    /// Install a fault plan: schedules every degradation/stall window on the
    /// engine and arms the control-message drop streams. Call at most once
    /// per run, before traffic starts. An empty plan changes nothing — the
    /// event stream stays identical to a build without fault support.
    pub fn apply_faults(
        &mut self,
        engine: &mut Engine,
        plan: &FaultPlan,
    ) -> Result<(), FaultPlanError> {
        plan.validate()?;
        self.faults = plan.clone();
        self.degradation_active = vec![false; plan.link_degradations.len()];
        self.stalls_active = 0;
        for (i, d) in plan.link_degradations.iter().enumerate() {
            engine.at(d.start, self.window_tag(Step::LinkFaultStart, i));
            engine.at(d.end, self.window_tag(Step::LinkFaultEnd, i));
        }
        for (i, s) in plan.nic_stalls.iter().enumerate() {
            engine.at(s.start, self.window_tag(Step::NicStallStart, i));
            engine.at(s.end, self.window_tag(Step::NicStallEnd, i));
        }
        self.drop_rts_rng = (plan.drop_rts > 0.0).then(|| plan.stream(STREAM_DROP_RTS));
        self.drop_cts_rng = (plan.drop_cts > 0.0).then(|| plan.stream(STREAM_DROP_CTS));
        Ok(())
    }

    /// Override the rendezvous retransmission policy.
    pub fn set_retry_policy(&mut self, rto_base: SimTime, max_retries: u32) {
        assert!(!rto_base.is_zero(), "zero retransmission timeout");
        self.rto_base = rto_base;
        self.max_retries = max_retries;
    }

    /// Retransmission accounting for a transfer (live or retired).
    pub fn retry_stats(&self, id: TransferId) -> RetryStats {
        self.retry_stats[id.0 as usize]
    }

    /// Total payload bytes actually delivered across the fabric links
    /// (control messages are modelled as pure latency and carry no wire
    /// volume). On a multi-hop fabric a payload is counted once per hop.
    /// Retransmitted control bytes are tracked separately in
    /// [`RetryStats::retrans_bytes`].
    pub fn wire_delivered(&self, engine: &Engine) -> f64 {
        self.links.iter().map(|&w| engine.delivered(w)).sum()
    }

    /// Payload bytes delivered across one fabric link (index into
    /// [`Fabric::links`]).
    pub fn link_delivered(&self, engine: &Engine, link: usize) -> f64 {
        engine.delivered(self.links[link])
    }

    /// Drop all registration caches (ablation hook).
    pub fn clear_reg_cache(&mut self) {
        for c in &mut self.reg_cache {
            c.clear();
        }
    }

    fn step_tag(&self, id: TransferId, step: Step) -> u64 {
        tag(tags::ns::NET, kind_index(step as u32, id.0))
    }

    /// Tag for a fault-window edge; the transfer-id slot carries the window
    /// index instead.
    fn window_tag(&self, step: Step, window: usize) -> u64 {
        tag(tags::ns::NET, kind_index(step as u32, window as u32))
    }

    /// True if an event tag belongs to netsim.
    pub fn owns(&self, event_tag: u64) -> bool {
        simcore::namespace(event_tag) == tags::ns::NET
    }

    /// Package-idle latency penalty given machine-wide heavy-core count.
    fn idle_penalty(&self, heavy_total: u32) -> SimTime {
        let fade = (1.0 - heavy_total as f64 / IDLE_PENALTY_FADE_CORES).max(0.0);
        SimTime::from_secs_f64(self.idle_penalty_s * fade * self.lat_mult)
    }

    /// Begin a send of `size` bytes from `from_node`'s `data_numa` to
    /// `to_node`'s `dest_numa`. `buffer` keys the registration cache.
    #[allow(clippy::too_many_arguments)]
    pub fn start_send(
        &mut self,
        engine: &mut Engine,
        from_node: usize,
        to_node: usize,
        from: &NodeRef<'_>,
        size: usize,
        data_numa: NumaId,
        dest_numa: NumaId,
        buffer: u64,
    ) -> TransferId {
        debug_assert!(from_node != to_node, "self-sends never touch the fabric");
        debug_assert!(from_node < self.nodes() && to_node < self.nodes());
        let id = TransferId(self.transfers.len() as u32);
        telemetry::async_begin(
            engine.now(),
            "net.xfer",
            if size <= self.cfg.eager_threshold {
                "eager"
            } else {
                "rdv"
            },
            id.0 as u64,
            Lane::Node(from_node as u8),
        );
        self.transfers.push(Some(Transfer {
            from: from_node,
            to: to_node,
            size,
            data_numa,
            dest_numa,
            buffer,
            started: engine.now(),
            send_done: None,
            recv_ready: false,
            awaiting_recv: false,
            rts_sent: false,
            rts_arrived: false,
            cts_sent: false,
            dma_started: false,
            retries: 0,
            rto: self.rto_base,
        }));
        self.retry_stats.push(RetryStats::default());
        // Step 1: software overhead — cycles on the communication core.
        let cycles = self.cfg.sw_overhead_cycles * 0.5;
        engine.start_flow(FlowSpec {
            path: vec![from.mem.core_resource(from.comm_core)],
            volume: cycles,
            weight: 1.0,
            cap: None,
            tag: self.step_tag(id, Step::SendOverhead),
        });
        id
    }

    /// The receiver posted a matching receive: rendezvous transfers waiting
    /// for the CTS may proceed.
    pub fn recv_ready(&mut self, engine: &mut Engine, id: TransferId) {
        // Eager transfers may already have completed and retired; posting
        // the receive afterwards is then a no-op.
        let Some(t) = self.transfers[id.0 as usize].as_mut() else {
            return;
        };
        t.recv_ready = true;
        if t.awaiting_recv {
            t.awaiting_recv = false;
            self.send_cts(engine, id);
        }
    }

    fn send_cts(&mut self, engine: &mut Engine, id: TransferId) {
        let tid = id.0 as usize;
        let (resend, to) = {
            let t = self.transfers[tid].as_mut().expect("live transfer");
            let resend = t.cts_sent;
            t.cts_sent = true;
            (resend, t.to)
        };
        if resend {
            self.retry_stats[tid].retrans_bytes += CTRL_MSG_BYTES;
        }
        // The CTS originates on the receiver's node.
        let cts_lane = Lane::Node(to as u8);
        // Fault injection: the CTS may be lost on the wire. The sender's
        // retransmission timeout will eventually re-drive the handshake.
        if let Some(rng) = &mut self.drop_cts_rng {
            if rng.next_f64() < self.faults.drop_cts {
                telemetry::instant(engine.now(), "net", "cts.drop", cts_lane);
                return;
            }
        }
        telemetry::instant(engine.now(), "net", "cts", cts_lane);
        // CTS crosses the wire back to the sender.
        let lat = SimTime::from_secs_f64(self.cfg.wire_latency_s * self.lat_mult);
        engine.after(lat, self.step_tag(id, Step::CtsArrived));
    }

    /// Advance a transfer on one of our events. `nodes(i)` returns the
    /// context of node `i` (called lazily for the two endpoints of the
    /// transfer, so an N-node cluster pays O(1) per event). Returns
    /// surfaced events (send-complete / delivered).
    pub fn on_event<'a>(
        &mut self,
        engine: &mut Engine,
        nodes: impl Fn(usize) -> NodeRef<'a>,
        event: &simcore::Event,
    ) -> Vec<NetEvent> {
        debug_assert!(self.owns(event.tag()));
        let (step_raw, tid) = split_kind_index(simcore::payload(event.tag()));
        let step = Step::from_u32(step_raw);
        let id = TransferId(tid);
        let mut out = Vec::new();

        // Fault-window edges and timeouts are not tied to a live transfer;
        // handle them before the per-transfer prologue.
        match step {
            Step::LinkFaultStart | Step::LinkFaultEnd => {
                let starting = step == Step::LinkFaultStart;
                self.degradation_active[tid as usize] = starting;
                let name = if starting { "link.degrade" } else { "link.restore" };
                telemetry::instant(engine.now(), "net", name, Lane::Engine);
                self.refresh_caps(engine);
                return out;
            }
            Step::NicStallStart => {
                self.stalls_active += 1;
                telemetry::instant(engine.now(), "net", "nic.stall", Lane::Engine);
                self.refresh_caps(engine);
                return out;
            }
            Step::NicStallEnd => {
                self.stalls_active -= 1;
                telemetry::instant(engine.now(), "net", "nic.resume", Lane::Engine);
                self.refresh_caps(engine);
                return out;
            }
            Step::RtsTimeout => {
                self.on_rts_timeout(engine, id, &mut out);
                return out;
            }
            _ => {}
        }

        let (from, to, size, data_numa, dest_numa, buffer) = {
            let t = self.transfers[tid as usize].as_ref().expect("live transfer");
            (t.from, t.to, t.size, t.data_numa, t.dest_numa, t.buffer)
        };
        let sender = nodes(from);
        let receiver = nodes(to);

        match step {
            Step::SendOverhead => {
                // Control transactions (doorbell to the NIC) with
                // congestion-inflated latency, plus the package-idle penalty.
                let per_access = sender.mem.control_latency(
                    engine,
                    Requester::Core(sender.comm_core),
                    sender.mem.spec().nic_numa,
                );
                let mut d = per_access * (self.cfg.ctrl_accesses * 0.5 * self.lat_mult);
                d += self.idle_penalty(sender.freqs.heavy_total());
                engine.after(d, self.step_tag(id, Step::SendCtrl));
            }
            Step::SendCtrl => {
                if size <= self.cfg.eager_threshold {
                    // Eager: wire latency, then the PIO-paced payload.
                    let lat = SimTime::from_secs_f64(self.cfg.wire_latency_s * self.lat_mult);
                    engine.after(lat, self.step_tag(id, Step::EagerWire));
                } else {
                    // Rendezvous: register the buffer if needed.
                    if self.reg_cache[from].insert(buffer) {
                        let cost = SimTime::from_secs_f64(
                            (self.cfg.reg_base_s + self.cfg.reg_per_byte_s * size as f64)
                                * self.lat_mult,
                        );
                        telemetry::counter_add("net.reg_miss", 1);
                        telemetry::complete(
                            engine.now(),
                            engine.now() + cost,
                            "net",
                            "register",
                            Lane::Node(from as u8),
                        );
                        engine.after(cost, self.step_tag(id, Step::Registration));
                    } else {
                        telemetry::counter_add("net.reg_hit", 1);
                        self.send_rts(engine, id);
                    }
                }
            }
            Step::Registration => {
                self.send_rts(engine, id);
            }
            Step::EagerWire => {
                // PIO copy: payload crosses sender memory path, NIC, wire,
                // receiver NIC and receiver memory, paced by the CPU copy.
                telemetry::counter_add("net.pio.bytes", (size as u64).max(1));
                let f = sender.freqs.core_freq(sender.comm_core);
                let cap = PIO_BYTES_PER_CYCLE * f * 1e9;
                let mut path = sender.mem.path(Requester::Core(sender.comm_core), data_numa);
                self.push_wire(&mut path, from, to);
                path.extend(receiver.mem.path(Requester::Nic, dest_numa));
                engine.start_flow(FlowSpec {
                    path,
                    volume: (size as f64).max(1.0),
                    weight: 1.0,
                    cap: Some(cap),
                    tag: self.step_tag(id, Step::EagerPayload),
                });
            }
            Step::EagerPayload => {
                let t = self.transfers[tid as usize].as_mut().expect("live transfer");
                t.send_done = Some(engine.now());
                telemetry::sample(
                    "net.sender_elapsed_us",
                    (engine.now() - t.started).as_micros_f64(),
                );
                out.push(NetEvent::SendComplete {
                    id,
                    sender_elapsed: engine.now() - t.started,
                });
                engine.start_flow(FlowSpec {
                    path: vec![receiver.mem.core_resource(receiver.comm_core)],
                    volume: self.cfg.sw_overhead_cycles * 0.5,
                    weight: 1.0,
                    cap: None,
                    tag: self.step_tag(id, Step::RecvOverhead),
                });
            }
            Step::RtsArrived => {
                let t = self.transfers[tid as usize].as_mut().expect("live transfer");
                t.rts_arrived = true;
                if t.recv_ready {
                    // Also re-sends the CTS on a duplicate RTS (the previous
                    // CTS was dropped); `dma_started` dedups the sender side.
                    self.send_cts(engine, id);
                } else {
                    t.awaiting_recv = true;
                }
            }
            Step::CtsArrived => {
                {
                    let t = self.transfers[tid as usize].as_mut().expect("live transfer");
                    if t.dma_started {
                        // Duplicate CTS from a retried handshake.
                        return out;
                    }
                    t.dma_started = true;
                }
                telemetry::async_begin(
                    engine.now(),
                    "net.dma",
                    "dma",
                    id.0 as u64,
                    Lane::Node(from as u8),
                );
                // DMA: the NIC pulls from sender memory and pushes into
                // receiver memory; the weight reflects the NIC's
                // outstanding-request aggressiveness.
                telemetry::counter_add("net.dma.bytes", size as u64);
                let mut path = sender.mem.path(Requester::Nic, data_numa);
                self.push_wire(&mut path, from, to);
                path.extend(receiver.mem.path(Requester::Nic, dest_numa));
                engine.start_flow(FlowSpec {
                    path,
                    volume: size as f64,
                    weight: self.cfg.nic_dma_weight,
                    cap: None,
                    tag: self.step_tag(id, Step::DmaDone),
                });
            }
            Step::DmaDone => {
                let t = self.transfers[tid as usize].as_mut().expect("live transfer");
                t.send_done = Some(engine.now());
                telemetry::async_end(engine.now(), "net.dma", id.0 as u64, Lane::Node(from as u8));
                telemetry::sample(
                    "net.sender_elapsed_us",
                    (engine.now() - t.started).as_micros_f64(),
                );
                out.push(NetEvent::SendComplete {
                    id,
                    sender_elapsed: engine.now() - t.started,
                });
                engine.start_flow(FlowSpec {
                    path: vec![receiver.mem.core_resource(receiver.comm_core)],
                    volume: self.cfg.sw_overhead_cycles * 0.5,
                    weight: 1.0,
                    cap: None,
                    tag: self.step_tag(id, Step::RecvOverhead),
                });
            }
            Step::RecvOverhead => {
                // Completion handling is NIC-side control traffic (CQ on
                // the NIC's NUMA node), not a DRAM access.
                let per_access = receiver.mem.control_latency(
                    engine,
                    Requester::Core(receiver.comm_core),
                    receiver.mem.spec().nic_numa,
                );
                // The idle penalty is a per-message effect; it was already
                // charged on the send side.
                let d = per_access * (self.cfg.ctrl_accesses * 0.5 * self.lat_mult);
                engine.after(d, self.step_tag(id, Step::RecvCtrl));
            }
            Step::RecvCtrl => {
                self.transfers[tid as usize] = None;
                telemetry::async_end(engine.now(), "net.xfer", id.0 as u64, Lane::Node(from as u8));
                out.push(NetEvent::Delivered { id });
            }
            Step::LinkFaultStart
            | Step::LinkFaultEnd
            | Step::NicStallStart
            | Step::NicStallEnd
            | Step::RtsTimeout => unreachable!("handled before the transfer prologue"),
        }
        let _ = buffer;
        out
    }

    /// A retransmission timeout expired for `id`'s rendezvous handshake.
    fn on_rts_timeout(&mut self, engine: &mut Engine, id: TransferId, out: &mut Vec<NetEvent>) {
        let tid = id.0 as usize;
        let Some(t) = self.transfers[tid].as_mut() else {
            // Transfer already delivered and retired; stale timer.
            return;
        };
        if t.dma_started {
            // Handshake succeeded before the timer fired.
            return;
        }
        if t.rts_arrived && !t.cts_sent {
            // The RTS got through but the receiver has not posted a matching
            // receive yet — nothing was lost, so re-arm without counting a
            // retry (the CTS path re-checks on `recv_ready`).
            let rto = t.rto;
            engine.after(rto, self.step_tag(id, Step::RtsTimeout));
            return;
        }
        // Either the RTS or the CTS was lost: retransmit with backoff.
        let waited = t.rto;
        let from = t.from;
        t.retries += 1;
        t.rto = t.rto * 2;
        let retries = t.retries;
        let stats = &mut self.retry_stats[tid];
        stats.retries += 1;
        stats.retry_wait += waited;
        telemetry::counter_add("net.retrans", 1);
        telemetry::instant(engine.now(), "net", "rto", Lane::Node(from as u8));
        if retries > self.max_retries {
            self.transfers[tid] = None;
            telemetry::instant(engine.now(), "net", "xfer.failed", Lane::Node(from as u8));
            telemetry::async_end(engine.now(), "net.xfer", id.0 as u64, Lane::Node(from as u8));
            out.push(NetEvent::Failed { id, retries });
            return;
        }
        self.send_rts(engine, id);
    }

    fn send_rts(&mut self, engine: &mut Engine, id: TransferId) {
        let tid = id.0 as usize;
        let (resend, rto, from) = {
            let t = self.transfers[tid].as_mut().expect("live transfer");
            let resend = t.rts_sent;
            t.rts_sent = true;
            (resend, t.rto, t.from)
        };
        if resend {
            self.retry_stats[tid].retrans_bytes += CTRL_MSG_BYTES;
        }
        // With drops armed, guard every handshake with a retransmission
        // timeout. Healthy runs skip the timer entirely so their event
        // streams are untouched by fault support.
        if self.drop_rts_rng.is_some() || self.drop_cts_rng.is_some() {
            engine.after(rto, self.step_tag(id, Step::RtsTimeout));
        }
        // Fault injection: the RTS may be lost on the wire.
        if let Some(rng) = &mut self.drop_rts_rng {
            if rng.next_f64() < self.faults.drop_rts {
                telemetry::instant(engine.now(), "net", "rts.drop", Lane::Node(from as u8));
                return;
            }
        }
        telemetry::instant(engine.now(), "net", "rts", Lane::Node(from as u8));
        // RTS crosses the wire.
        let lat = SimTime::from_secs_f64(self.cfg.wire_latency_s * self.lat_mult);
        engine.after(lat, self.step_tag(id, Step::RtsArrived));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freq::{Activity, Governor, UncorePolicy};
    use topology::henri;

    struct World {
        engine: Engine,
        mem: [MemSystem; 2],
        freqs: [FreqModel; 2],
        net: NetSim,
        comm_core: CoreId,
    }

    fn world() -> World {
        world_with_comm_core(CoreId(35))
    }

    fn world_with_comm_core(comm_core: CoreId) -> World {
        let spec = henri();
        let mut engine = Engine::new();
        let mem = [
            MemSystem::build(&mut engine, &spec, "n0."),
            MemSystem::build(&mut engine, &spec, "n1."),
        ];
        let mut freqs = [
            FreqModel::new(&spec, Governor::Userspace(2.3), UncorePolicy::Fixed(2.4)),
            FreqModel::new(&spec, Governor::Userspace(2.3), UncorePolicy::Fixed(2.4)),
        ];
        for (f, m) in freqs.iter_mut().zip(&mem) {
            f.set_activity(comm_core, Activity::Light);
            m.apply_freqs(&mut engine, f);
        }
        let net = NetSim::build(&mut engine, &spec);
        World {
            engine,
            mem,
            freqs,
            net,
            comm_core,
        }
    }

    /// Drive one message through; returns (delivery_latency, send_elapsed).
    fn one_way(w: &mut World, size: usize, buffer: u64) -> (SimTime, SimTime) {
        let start = w.engine.now();
        let id = {
            let n0 = NodeRef {
                mem: &w.mem[0],
                freqs: &w.freqs[0],
                comm_core: w.comm_core,
            };
            w.net
                .start_send(&mut w.engine, 0, 1, &n0, size, NumaId(0), NumaId(0), buffer)
        };
        w.net.recv_ready(&mut w.engine, id);
        let mut delivered = None;
        let mut send_el = None;
        while delivered.is_none() {
            let ev = w.engine.next().expect("progress");
            if w.net.owns(ev.tag()) {
                let (mem, freqs, cc) = (&w.mem, &w.freqs, w.comm_core);
                for out in w.net.on_event(
                    &mut w.engine,
                    |i| NodeRef {
                        mem: &mem[i],
                        freqs: &freqs[i],
                        comm_core: cc,
                    },
                    &ev,
                ) {
                    match out {
                        NetEvent::SendComplete { sender_elapsed, .. } => {
                            send_el = Some(sender_elapsed)
                        }
                        NetEvent::Delivered { .. } => delivered = Some(w.engine.now()),
                        NetEvent::Failed { .. } => panic!("healthy fabric cannot fail"),
                    }
                }
            }
        }
        (delivered.unwrap() - start, send_el.unwrap())
    }

    #[test]
    fn small_message_latency_near_paper_point() {
        // 4 B at 2.3 GHz fixed: the paper measures 1.8 µs on henri.
        // Communication thread near the NIC (last core of NUMA 0).
        let mut w = world_with_comm_core(CoreId(8));
        let (lat, _) = one_way(&mut w, 4, 1);
        let us = lat.as_micros_f64();
        assert!((1.5..2.2).contains(&us), "latency {} µs", us);
    }

    #[test]
    fn far_comm_thread_adds_numa_latency() {
        // Fig 5 baselines: 1.39 µs (near) vs 1.67 µs (far) — ~0.3 µs apart.
        let mut near = world_with_comm_core(CoreId(8));
        let mut far = world_with_comm_core(CoreId(35));
        let (ln, _) = one_way(&mut near, 4, 1);
        let (lf, _) = one_way(&mut far, 4, 1);
        let delta = lf.as_micros_f64() - ln.as_micros_f64();
        assert!((0.1..0.6).contains(&delta), "delta {} µs", delta);
    }

    #[test]
    fn latency_increases_at_low_frequency() {
        // Paper: 3.1 µs at 1 GHz vs 1.8 µs at 2.3 GHz (+72 %).
        let spec = henri();
        let lat_at = |ghz: f64| {
            let mut w = world();
            for f in &mut w.freqs {
                *f = FreqModel::new(&spec, Governor::Userspace(ghz), UncorePolicy::Fixed(2.4));
                f.set_activity(w.comm_core, Activity::Light);
            }
            for i in 0..2 {
                w.mem[i].apply_freqs(&mut w.engine, &w.freqs[i]);
            }
            one_way(&mut w, 4, 1).0.as_micros_f64()
        };
        let slow = lat_at(1.0);
        let fast = lat_at(2.3);
        assert!(slow > fast * 1.5, "slow {} fast {}", slow, fast);
    }

    #[test]
    fn large_message_bandwidth_near_line_rate() {
        let mut w = world();
        let size = 64 * 1024 * 1024;
        // First send pays registration; repeat to hit the cache.
        let (_, _) = one_way(&mut w, size, 7);
        let (lat, _) = one_way(&mut w, size, 7);
        let bw = size as f64 / lat.as_secs_f64();
        // dma_bw is 10.8 GB/s; expect ≥ 90 % of it end to end.
        assert!(bw > 9.7e9, "bandwidth {} GB/s", bw / 1e9);
        assert!(bw < 12.0e9);
    }

    #[test]
    fn registration_cache_speeds_up_reuse() {
        let mut w = world();
        let size = 4 * 1024 * 1024;
        let (first, _) = one_way(&mut w, size, 42);
        let (second, _) = one_way(&mut w, size, 42);
        assert!(
            first.as_secs_f64() > second.as_secs_f64() + w.net.cfg.reg_base_s,
            "first {} second {}",
            first,
            second
        );
        // A different buffer pays registration again.
        let (third, _) = one_way(&mut w, size, 43);
        assert!(third > second);
    }

    #[test]
    fn eager_rendezvous_continuity() {
        // Latency should not jump wildly across the protocol threshold.
        let mut w = world();
        let thr = w.net.cfg.eager_threshold;
        let (below, _) = one_way(&mut w, thr - 64, 1);
        let (_, _) = one_way(&mut w, thr + 64, 2); // pays registration
        let (above, _) = one_way(&mut w, thr + 64, 2); // cached
        assert!(
            above.as_secs_f64() < below.as_secs_f64() * 2.0,
            "below {} above {}",
            below,
            above
        );
    }

    #[test]
    fn send_complete_precedes_delivery() {
        let mut w = world();
        let (lat, send_el) = one_way(&mut w, 1 << 20, 9);
        assert!(send_el < lat);
    }

    #[test]
    fn bandwidth_jitter_scales_rate() {
        let mut w = world();
        let size = 16 * 1024 * 1024;
        let (_, _) = one_way(&mut w, size, 5); // register
        let (base, _) = one_way(&mut w, size, 5);
        w.net.set_jitter(&mut w.engine, 1.0, 0.5);
        let (slowed, _) = one_way(&mut w, size, 5);
        assert!(slowed.as_secs_f64() > base.as_secs_f64() * 1.5);
    }

    #[test]
    fn uncore_scales_dma_capacity() {
        let mut w = world();
        let spec = henri();
        w.net.apply_uncore(&mut w.engine, &spec, &[1.2, 1.2]);
        let size = 64 * 1024 * 1024;
        let (_, _) = one_way(&mut w, size, 3);
        let (low, _) = one_way(&mut w, size, 3);
        w.net.apply_uncore(&mut w.engine, &spec, &[2.4, 2.4]);
        let (high, _) = one_way(&mut w, size, 3);
        let bw_low = size as f64 / low.as_secs_f64();
        let bw_high = size as f64 / high.as_secs_f64();
        // ~4 % effect, like the paper's 10.1 vs 10.5 GB/s.
        assert!(bw_high > bw_low * 1.02, "low {} high {}", bw_low, bw_high);
        assert!(bw_high < bw_low * 1.10);
    }

    /// Drive one message to completion or failure under faults; returns
    /// (delivered, retry stats).
    fn one_way_faulted(w: &mut World, size: usize, buffer: u64) -> (bool, RetryStats) {
        let id = {
            let n0 = NodeRef {
                mem: &w.mem[0],
                freqs: &w.freqs[0],
                comm_core: w.comm_core,
            };
            w.net
                .start_send(&mut w.engine, 0, 1, &n0, size, NumaId(0), NumaId(0), buffer)
        };
        w.net.recv_ready(&mut w.engine, id);
        let mut delivered = false;
        let mut failed = false;
        while !delivered && !failed {
            let Some(ev) = w.engine.next() else { break };
            if w.net.owns(ev.tag()) {
                let (mem, freqs, cc) = (&w.mem, &w.freqs, w.comm_core);
                for out in w.net.on_event(
                    &mut w.engine,
                    |i| NodeRef {
                        mem: &mem[i],
                        freqs: &freqs[i],
                        comm_core: cc,
                    },
                    &ev,
                ) {
                    match out {
                        NetEvent::Delivered { .. } => delivered = true,
                        NetEvent::Failed { .. } => failed = true,
                        NetEvent::SendComplete { .. } => {}
                    }
                }
            }
        }
        (delivered, w.net.retry_stats(id))
    }

    #[test]
    fn cts_drops_trigger_retransmissions_then_delivery() {
        let mut w = world();
        let plan = FaultPlan::new(42).with_cts_drop(0.5);
        w.net.apply_faults(&mut w.engine, &plan).unwrap();
        let size = 4 << 20; // rendezvous
        let mut total_retries = 0;
        for buf in 0..8 {
            let (delivered, rs) = one_way_faulted(&mut w, size, 100 + buf);
            assert!(delivered, "p=0.5 with 8 retries should recover");
            total_retries += rs.retries;
            if rs.retries > 0 {
                assert!(rs.retrans_bytes >= CTRL_MSG_BYTES);
                assert!(!rs.retry_wait.is_zero());
            }
        }
        assert!(total_retries > 0, "half the CTSes should have been dropped");
    }

    #[test]
    fn certain_drops_exhaust_retries_and_fail() {
        let mut w = world();
        let plan = FaultPlan::new(7).with_rts_drop(1.0);
        w.net.apply_faults(&mut w.engine, &plan).unwrap();
        w.net.set_retry_policy(SimTime::from_micros(50), 3);
        let (delivered, rs) = one_way_faulted(&mut w, 4 << 20, 1);
        assert!(!delivered, "nothing can get through at p=1");
        assert_eq!(rs.retries, 4, "3 retries plus the final give-up timeout");
        assert!(rs.retrans_bytes >= 3 * CTRL_MSG_BYTES);
    }

    #[test]
    fn identical_seeds_replay_identical_fault_traces() {
        let run = |seed: u64| {
            let mut w = world();
            let plan = FaultPlan::new(seed).with_cts_drop(0.4).with_rts_drop(0.2);
            w.net.apply_faults(&mut w.engine, &plan).unwrap();
            let mut trace = Vec::new();
            for buf in 0..6 {
                let (delivered, rs) = one_way_faulted(&mut w, 2 << 20, buf);
                trace.push((delivered, rs.retries, rs.retrans_bytes, w.engine.now()));
            }
            trace
        };
        assert_eq!(run(1234), run(1234), "same seed must replay exactly");
        assert_ne!(run(1234), run(4321), "different seeds should diverge");
    }

    #[test]
    fn link_degradation_window_slows_transfer() {
        // Healthy baseline.
        let mut w = world();
        let size = 64 << 20;
        let (_, _) = one_way(&mut w, size, 1); // warm registration cache
        let t0 = w.engine.now();
        let (healthy, _) = one_way(&mut w, size, 1);
        drop(w);

        // Same transfer with the wire degraded to 25 % for a window that
        // covers it.
        let mut w = world();
        let plan = FaultPlan::new(0).with_link_degradation(
            SimTime::ZERO,
            t0 + SimTime::SEC * 10,
            0.25,
        );
        w.net.apply_faults(&mut w.engine, &plan).unwrap();
        let (_, _) = one_way(&mut w, size, 1);
        let (degraded, _) = one_way(&mut w, size, 1);
        assert!(
            degraded.as_secs_f64() > healthy.as_secs_f64() * 1.5,
            "healthy {:?} degraded {:?}",
            healthy,
            degraded
        );
    }

    #[test]
    fn nic_stall_window_pauses_then_resumes() {
        let mut w = world();
        let size = 16 << 20;
        let (_, _) = one_way(&mut w, size, 1);
        let healthy = {
            let t0 = w.engine.now();
            let (lat, _) = one_way(&mut w, size, 1);
            let _ = t0;
            lat
        };
        drop(w);

        let mut w = world();
        // Stall both NICs for 5 ms starting almost immediately.
        let stall = SimTime::from_millis(5);
        let plan = FaultPlan::new(0).with_nic_stall(SimTime::from_micros(10), SimTime::from_micros(10) + stall);
        w.net.apply_faults(&mut w.engine, &plan).unwrap();
        let (stalled, _) = one_way(&mut w, size, 1);
        // The transfer must still complete, later than healthy by roughly
        // the stall length (registration happens inside the stall here, so
        // only a lower bound is asserted).
        assert!(
            stalled.as_secs_f64() > healthy.as_secs_f64(),
            "stalled {:?} healthy {:?}",
            stalled,
            healthy
        );
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let mut base = world();
        let (lat_base, _) = one_way(&mut base, 4 << 20, 1);
        let t_base = base.engine.now();

        let mut faulted = world();
        faulted
            .net
            .apply_faults(&mut faulted.engine, &FaultPlan::new(99))
            .unwrap();
        let (lat_faulted, _) = one_way(&mut faulted, 4 << 20, 1);
        assert_eq!(lat_base, lat_faulted);
        assert_eq!(t_base, faulted.engine.now());
    }

    /// A 4-node world over an arbitrary fabric (every node reuses the same
    /// MemSystem/FreqModel layout; the fabric is what differs).
    struct FabricWorld {
        engine: Engine,
        mem: Vec<MemSystem>,
        freqs: Vec<FreqModel>,
        net: NetSim,
        comm_core: CoreId,
    }

    fn fabric_world(fabric: topology::fabric::Fabric) -> FabricWorld {
        let spec = henri();
        let comm_core = CoreId(8);
        let mut engine = Engine::new();
        let n = fabric.nodes();
        let mem: Vec<_> = (0..n)
            .map(|i| MemSystem::build(&mut engine, &spec, format!("n{}.", i)))
            .collect();
        let mut freqs: Vec<_> = (0..n)
            .map(|_| FreqModel::new(&spec, Governor::Userspace(2.3), UncorePolicy::Fixed(2.4)))
            .collect();
        for (f, m) in freqs.iter_mut().zip(&mem) {
            f.set_activity(comm_core, Activity::Light);
            m.apply_freqs(&mut engine, f);
        }
        let net = NetSim::build_fabric(&mut engine, &spec, fabric);
        FabricWorld {
            engine,
            mem,
            freqs,
            net,
            comm_core,
        }
    }

    /// Drive one `src → dst` message to delivery on a fabric world.
    fn fabric_one_way(w: &mut FabricWorld, src: usize, dst: usize, size: usize, buffer: u64) {
        let id = {
            let nref = NodeRef {
                mem: &w.mem[src],
                freqs: &w.freqs[src],
                comm_core: w.comm_core,
            };
            w.net
                .start_send(&mut w.engine, src, dst, &nref, size, NumaId(0), NumaId(0), buffer)
        };
        w.net.recv_ready(&mut w.engine, id);
        let mut delivered = false;
        while !delivered {
            let ev = w.engine.next().expect("progress");
            if w.net.owns(ev.tag()) {
                let (mem, freqs, cc) = (&w.mem, &w.freqs, w.comm_core);
                for out in w.net.on_event(
                    &mut w.engine,
                    |i| NodeRef {
                        mem: &mem[i],
                        freqs: &freqs[i],
                        comm_core: cc,
                    },
                    &ev,
                ) {
                    if matches!(out, NetEvent::Delivered { .. }) {
                        delivered = true;
                    }
                }
            }
        }
    }

    #[test]
    fn multi_hop_routes_conserve_bytes_per_link() {
        use topology::fabric::FabricPreset;
        // Send distinct payloads across every fabric preset and assert each
        // link delivered exactly the bytes of the messages routed over it.
        for preset in FabricPreset::ALL {
            let fabric = preset.spec(8).build_for(8);
            let mut w = fabric_world(fabric);
            let msgs = [(0usize, 5usize, 4096usize), (3, 6, 100_000), (7, 1, 64)];
            let mut expect = vec![0.0f64; w.net.fabric().links().len()];
            for (i, &(s, d, size)) in msgs.iter().enumerate() {
                fabric_one_way(&mut w, s, d, size, 1000 + i as u64);
                for &l in w.net.fabric().route(s, d) {
                    expect[l as usize] += (size as f64).max(1.0);
                }
            }
            for (l, &want) in expect.iter().enumerate() {
                let got = w.net.link_delivered(&w.engine, l);
                // Event times are quantized to picoseconds, so a flow may
                // overshoot its volume by up to rate × 1 ps at completion.
                let quantum = w.net.fabric().links()[l].bw_scale * 12.08e9 * 1e-12;
                let slack = quantum * msgs.len() as f64 + 1e-9;
                assert!(
                    (got - want).abs() <= slack,
                    "{}: link {} delivered {} expected {} (slack {})",
                    preset.name(),
                    w.net.fabric().links()[l].name,
                    got,
                    want,
                    slack
                );
            }
        }
    }

    #[test]
    fn switch_vs_direct_same_message_same_protocol_times() {
        // On an uncontended path the extra switch hop only adds a bandwidth
        // resource (latency is end-to-end), so eager latency matches the
        // direct wire.
        let mut direct = world_with_comm_core(CoreId(8));
        let (d_lat, _) = one_way(&mut direct, 4096, 1);
        let mut sw = fabric_world(FabricSpec::switch().build_for(2));
        fabric_one_way(&mut sw, 0, 1, 4096, 1);
        let s_lat = sw.engine.now();
        assert_eq!(d_lat, s_lat, "direct {:?} switch {:?}", d_lat, s_lat);
    }

    #[test]
    fn rendezvous_waits_for_receiver() {
        // Without recv_ready the transfer must stall at the RTS.
        let mut w = world();
        let id = {
            let n0 = NodeRef {
                mem: &w.mem[0],
                freqs: &w.freqs[0],
                comm_core: w.comm_core,
            };
            w.net
                .start_send(&mut w.engine, 0, 1, &n0, 1 << 20, NumaId(0), NumaId(0), 77)
        };
        let mut delivered = false;
        let drain = |w: &mut World, delivered: &mut bool| {
            while let Some(ev) = w.engine.next() {
                if w.net.owns(ev.tag()) {
                    let (mem, freqs, cc) = (&w.mem, &w.freqs, w.comm_core);
                    for out in w.net.on_event(
                        &mut w.engine,
                        |i| NodeRef {
                            mem: &mem[i],
                            freqs: &freqs[i],
                            comm_core: cc,
                        },
                        &ev,
                    ) {
                        if matches!(out, NetEvent::Delivered { .. }) {
                            *delivered = true;
                        }
                    }
                }
            }
        };
        drain(&mut w, &mut delivered);
        assert!(!delivered, "must wait for the receive to be posted");
        w.net.recv_ready(&mut w.engine, id);
        drain(&mut w, &mut delivered);
        assert!(delivered);
    }
}
