//! Tier-2: the experiment registry and the campaign engine's determinism
//! guarantee — a parallel campaign must be byte-identical to a serial one.

use interference::campaign::{run_set, CampaignOptions};
use interference::experiments::{self, Fidelity};
use interference::results::figures_to_json;

/// The registry's names, in `run_all` / `run_extensions` order. This list
/// is load-bearing: `repro --only` and the CSV/JSON exports key off these
/// names, and the order fixes the figure order of `repro --all`.
const EXPECTED: [&str; 17] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "cross_machine",
    "ablations",
    "overlap",
    "faulted_pingpong",
    "collective_contention",
    "collective_dvfs",
];

#[test]
fn registry_is_complete_unique_and_ordered() {
    let names: Vec<&str> = experiments::all_experiments()
        .iter()
        .map(|e| e.name())
        .collect();
    assert_eq!(names, EXPECTED, "registry changed: update EXPECTED and DESIGN.md");
    let unique: std::collections::HashSet<&&str> = names.iter().collect();
    assert_eq!(unique.len(), names.len(), "duplicate registry names");
    assert_eq!(
        experiments::PAPER_EXPERIMENTS.len() + experiments::EXTENSION_EXPERIMENTS.len(),
        EXPECTED.len(),
        "an experiment is registered in both (or neither) registry"
    );
}

#[test]
fn find_resolves_every_name_and_rejects_unknowns() {
    for name in EXPECTED {
        let e = experiments::find(name).expect("registered");
        assert_eq!(e.name(), name);
        assert!(!e.anchor().is_empty(), "{} has no paper anchor", name);
    }
    assert!(experiments::find("fig99").is_none());
}

#[test]
fn plans_are_dense_and_labelled() {
    for e in experiments::all_experiments() {
        for fidelity in [Fidelity::Quick, Fidelity::Full] {
            let plan = e.plan(fidelity);
            assert!(!plan.is_empty(), "{} has an empty plan", e.name());
            for (i, p) in plan.iter().enumerate() {
                assert_eq!(p.index, i, "{} plan indices not dense", e.name());
                assert!(!p.label.is_empty(), "{} point {} unlabelled", e.name(), i);
            }
        }
    }
}

/// The engine's headline guarantee: `--jobs 4` produces byte-identical
/// figure JSON to `--jobs 1`. fig1 covers a plain per-point experiment,
/// fig4 covers one whose points flow through the memoized baseline cache
/// (where a wrong seed derivation would show up as order-dependent values).
#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    for name in ["fig1", "fig4"] {
        let exp = experiments::find(name).expect("registered");
        let serial: Vec<_> = run_set(&[exp], &CampaignOptions::serial(Fidelity::Quick))
            .into_iter()
            .flat_map(|r| r.figures)
            .collect();
        let parallel: Vec<_> = run_set(&[exp], &CampaignOptions::new(Fidelity::Quick, 4))
            .into_iter()
            .flat_map(|r| r.figures)
            .collect();
        assert_eq!(
            figures_to_json(&serial),
            figures_to_json(&parallel),
            "{}: parallel campaign diverged from serial",
            name
        );
    }
}
