//! Shared test support: a minimal JSON parser for validating the repo's
//! hand-rolled JSON exports (figures, timings, Chrome traces) without
//! pulling a serde format crate into the dependency-free build.
//!
//! Each integration-test target uses a different subset of this module.
#![allow(dead_code)]

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(a) => a,
            other => panic!("expected array, got {:?}", kind(other)),
        }
    }

    pub fn as_obj(&self) -> &BTreeMap<String, Json> {
        match self {
            Json::Obj(o) => o,
            other => panic!("expected object, got {:?}", kind(other)),
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {:?}", kind(other)),
        }
    }

    pub fn get(&self, key: &str) -> &Json {
        self.as_obj()
            .get(key)
            .unwrap_or_else(|| panic!("missing key {:?}", key))
    }

    /// Sorted key set of an object.
    pub fn keys(&self) -> Vec<&str> {
        self.as_obj().keys().map(|k| k.as_str()).collect()
    }
}

fn kind(j: &Json) -> &'static str {
    match j {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

/// Parse a complete JSON document, panicking (with position) on any syntax
/// error or trailing garbage — tests want loud failures.
pub fn parse(text: &str) -> Json {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    assert!(pos == bytes.len(), "trailing garbage at byte {}", pos);
    v
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) {
    assert!(
        *pos < b.len() && b[*pos] == c,
        "expected {:?} at byte {}",
        c as char,
        *pos
    );
    *pos += 1;
}

fn value(b: &[u8], pos: &mut usize) -> Json {
    skip_ws(b, pos);
    assert!(*pos < b.len(), "unexpected end of input");
    match b[*pos] {
        b'{' => {
            *pos += 1;
            let mut obj = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Json::Obj(obj);
            }
            loop {
                skip_ws(b, pos);
                let key = match value(b, pos) {
                    Json::Str(s) => s,
                    _ => panic!("object key must be a string at byte {}", *pos),
                };
                skip_ws(b, pos);
                expect(b, pos, b':');
                let at = *pos;
                let v = value(b, pos);
                assert!(
                    obj.insert(key.clone(), v).is_none(),
                    "duplicate object key {:?} at byte {}",
                    key,
                    at
                );
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Json::Obj(obj);
                    }
                    _ => panic!("expected ',' or '}}' at byte {}", *pos),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Json::Arr(arr);
            }
            loop {
                arr.push(value(b, pos));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Json::Arr(arr);
                    }
                    _ => panic!("expected ',' or ']' at byte {}", *pos),
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut s = String::new();
            loop {
                assert!(*pos < b.len(), "unterminated string");
                match b[*pos] {
                    b'"' => {
                        *pos += 1;
                        return Json::Str(s);
                    }
                    b'\\' => {
                        *pos += 1;
                        match b[*pos] {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'n' => s.push('\n'),
                            b'r' => s.push('\r'),
                            b't' => s.push('\t'),
                            b'u' => {
                                let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                                    .expect("utf8 escape");
                                let code = u32::from_str_radix(hex, 16).expect("hex escape");
                                s.push(char::from_u32(code).expect("scalar escape"));
                                *pos += 4;
                            }
                            e => panic!("unsupported escape \\{}", e as char),
                        }
                        *pos += 1;
                    }
                    _ => {
                        // Consume one UTF-8 character.
                        let start = *pos;
                        *pos += 1;
                        while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                            *pos += 1;
                        }
                        s.push_str(std::str::from_utf8(&b[start..*pos]).expect("utf8"));
                    }
                }
            }
        }
        b't' => {
            assert!(b[*pos..].starts_with(b"true"), "bad literal at {}", *pos);
            *pos += 4;
            Json::Bool(true)
        }
        b'f' => {
            assert!(b[*pos..].starts_with(b"false"), "bad literal at {}", *pos);
            *pos += 5;
            Json::Bool(false)
        }
        b'n' => {
            assert!(b[*pos..].starts_with(b"null"), "bad literal at {}", *pos);
            *pos += 4;
            Json::Null
        }
        _ => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).expect("utf8");
            Json::Num(s.parse().unwrap_or_else(|_| panic!("bad number {:?}", s)))
        }
    }
}
