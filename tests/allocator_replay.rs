//! Whole-campaign allocator replay: the incremental max-min solver must not
//! change a single byte of the figure exports.
//!
//! `simcore::fluid::FORCE_REFERENCE` makes every reallocation go through the
//! retained from-scratch solver (`fluid::reference`). Running the same
//! campaign slice both ways and comparing the `--json` export byte-for-byte
//! proves the incremental solver (inverse index + component dirty tracking)
//! is observationally identical at full-system scale — on top of the
//! per-solve bitwise equivalence the `prop_fluid_equiv` suite establishes.
//!
//! fig4 exercises the baseline cache and multi-resource transfer paths;
//! fig9 is the allocator-heaviest experiment (per-worker polling flows that
//! are cancelled and restarted constantly — exactly the churn the dirty
//! tracking accelerates).

use std::sync::atomic::Ordering;

use interference::campaign::{run_set, CampaignOptions};
use interference::experiments::{self, Fidelity};
use interference::results::figures_to_json;
use simcore::fluid::FORCE_REFERENCE;

fn campaign_json() -> String {
    let exps: Vec<_> = ["fig4", "fig9"]
        .iter()
        .map(|n| experiments::find(n).expect("registered"))
        .collect();
    let figures: Vec<_> = run_set(&exps, &CampaignOptions::serial(Fidelity::Quick))
        .into_iter()
        .flat_map(|r| r.figures)
        .collect();
    figures_to_json(&figures)
}

#[test]
fn quick_fig4_fig9_json_identical_with_either_solver() {
    // Probe that the switch really reroutes allocation: the reference
    // solver re-solves *every* component, the incremental one only the
    // dirty component — visible in the realloc stats.
    let mut net = simcore::FluidNet::new();
    let a = net.add_resource("a", 10.0);
    let b = net.add_resource("b", 10.0);
    for r in [a, b] {
        net.start_flow(simcore::FlowSpec {
            path: vec![r],
            volume: 1e9,
            weight: 1.0,
            cap: None,
            tag: 0,
        });
    }
    net.reallocate();
    net.set_capacity(a, 20.0); // dirties only `a`'s component
    FORCE_REFERENCE.store(true, Ordering::Relaxed);
    let stats = net.reallocate();
    FORCE_REFERENCE.store(false, Ordering::Relaxed);
    assert_eq!(stats.components, 2, "FORCE_REFERENCE did not engage");
    net.set_capacity(a, 30.0);
    assert_eq!(net.reallocate().components, 1, "incremental solve did not resume");

    let fast = campaign_json();
    FORCE_REFERENCE.store(true, Ordering::Relaxed);
    let reference = campaign_json();
    FORCE_REFERENCE.store(false, Ordering::Relaxed);
    assert_eq!(
        fast.len(),
        reference.len(),
        "incremental and reference solvers produced different-sized exports"
    );
    assert!(
        fast == reference,
        "incremental allocator changed campaign output: first differing byte at {}",
        fast.bytes()
            .zip(reference.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(fast.len().min(reference.len()))
    );
}
