//! Tier-2: the counter-driven interference predictor end to end.
//!
//! The pipeline (harvest -> train -> predict) must be bit-deterministic at
//! any worker count, durable through the result store, and must actually
//! generalise: a model that never saw a workload family must still rank
//! placements for it well enough to pick a near-optimal one.

use interference::campaign::{run_outcomes_with_store, CampaignOptions, StoreCtx};
use interference::experiments::harvest::{self, Family, Harvest, PairSpec};
use interference::experiments::{self, Fidelity};
use interference::store::ResultStore;
use predict::accuracy::{self, BEST_PICK_REGRET};
use predict::advisor::{default_params, Advisor};
use topology::presets::Preset;

/// A fresh store under a unique temp dir (tests run concurrently).
fn temp_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!("predict-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ResultStore::open(dir).expect("open temp store")
}

/// One preset's slice of the harvest grid — enough rows to train on, cheap
/// enough to run several times in one test.
fn henri_only() -> Harvest {
    Harvest {
        filter: Some(|s: &PairSpec| s.preset == Preset::Henri),
    }
}

fn harvest_pairs(exp: &Harvest, jobs: usize) -> Vec<harvest::TrainingPair> {
    let mut opts = CampaignOptions::serial(Fidelity::Quick);
    opts.jobs = jobs;
    let outcomes = run_outcomes_with_store(exp, &opts, None);
    assert!(
        outcomes.iter().all(|o| o.value.is_some()),
        "harvest must complete every grid point"
    );
    harvest::collect_pairs(&outcomes)
}

fn encode_pairs(pairs: &[harvest::TrainingPair]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for p in pairs {
        bytes.extend_from_slice(&p.encode());
    }
    bytes
}

/// Harvested training pairs are a pure function of the grid: a serial run
/// and a 4-worker run must produce byte-identical encoded pairs, in the
/// same order. Worker scheduling must not leak into features or targets.
#[test]
fn harvest_is_byte_identical_across_worker_counts() {
    let exp = henri_only();
    let serial = harvest_pairs(&exp, 1);
    let parallel = harvest_pairs(&exp, 4);
    assert!(!serial.is_empty());
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(
        encode_pairs(&serial),
        encode_pairs(&parallel),
        "harvest output depends on worker count"
    );
}

/// Training is bit-deterministic: two trainings on the same pairs encode
/// to identical model bytes, and the models predict bit-identical values
/// on every training row.
#[test]
fn training_is_byte_identical_across_runs() {
    let pairs = harvest_pairs(&henri_only(), 4);
    let params = default_params();
    let a = Advisor::train(&pairs, &params);
    let b = Advisor::train(&pairs, &params);
    assert_eq!(a.encode(), b.encode(), "model bytes differ between trainings");
    for p in &pairs {
        let pa = a.predict_features(&p.features);
        let pb = b.predict_features(&p.features);
        assert_eq!(pa.0.to_bits(), pb.0.to_bits());
        assert_eq!(pa.1.to_bits(), pb.1.to_bits());
    }
}

/// The advisor codec roundtrips: decode(encode(model)) predicts
/// bit-identically to the original.
#[test]
fn advisor_codec_preserves_predictions() {
    let pairs = harvest_pairs(&henri_only(), 4);
    let advisor = Advisor::train(&pairs, &default_params());
    let decoded = Advisor::decode(&advisor.encode()).expect("decode trained advisor");
    for p in &pairs {
        let a = advisor.predict_combined(&p.features);
        let b = decoded.predict_combined(&p.features);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// A store-backed harvest resumed from a prior partial run must reproduce
/// the uninterrupted pairs byte-for-byte. Durability is what makes the
/// Full-fidelity harvest practical: a crashed campaign resumes instead of
/// re-measuring hundreds of co-location pairs.
#[test]
fn harvest_resumes_byte_identical_from_store() {
    let exp = henri_only();
    let fresh = harvest_pairs(&exp, 2);

    let store = temp_store("harvest-resume");
    let mut opts = CampaignOptions::serial(Fidelity::Quick);
    opts.jobs = 2;
    let ctx = StoreCtx { store: &store, resume: true };
    let first = run_outcomes_with_store(&exp, &opts, Some(ctx));
    assert!(first.iter().all(|o| o.value.is_some()));
    // Second pass serves every point from the store instead of recomputing.
    let resumed = run_outcomes_with_store(&exp, &opts, Some(ctx));
    assert_eq!(
        encode_pairs(&harvest::collect_pairs(&resumed)),
        encode_pairs(&fresh),
        "store-restored harvest differs from a fresh run"
    );
}

/// Leave-one-workload-out generalisation (the placement-advisor use case):
/// for each family, train on the other four and rank the four placements
/// of every held-out (preset, cores, metric) group. The predicted-best
/// placement must be within 5% regret of the ground-truth best in at
/// least 80% of groups, and predicted orderings must correlate with the
/// truth on average.
#[test]
fn leave_one_workload_out_ranking_generalises() {
    let mut opts = CampaignOptions::serial(Fidelity::Quick);
    opts.jobs = 4; // full grid; order (and thus bytes) is jobs-independent
    let outcomes = run_outcomes_with_store(experiments::HARVEST_EXPERIMENT, &opts, None);
    let pairs = harvest::collect_pairs(&outcomes);
    assert!(pairs.len() >= 4 * Family::all().len(), "grid too small");

    let eval = accuracy::rank_eval(&pairs, &default_params());
    assert!(eval.groups >= 40, "too few held-out groups: {}", eval.groups);
    assert!(
        eval.best_pick >= 0.80,
        "held-out best-placement pick rate {:.3} < 0.80 (regret bound {})",
        eval.best_pick,
        BEST_PICK_REGRET
    );
    assert!(
        eval.mean_spearman >= 0.5,
        "mean rank correlation {:.3} < 0.5",
        eval.mean_spearman
    );
}
