//! Property tests for the telemetry layer: structural invariants of
//! journals recorded from real (optionally fault-injected) simulations,
//! histogram quantile behaviour, and byte-level reproducibility.

use std::collections::HashMap;

use freq::{Governor, UncorePolicy};
use mpisim::pingpong::{self, PingPongConfig};
use mpisim::Cluster;
use proptest::prelude::*;
use simcore::telemetry::{self, Journal, RecordKind};
use simcore::{quantile, FaultPlan, SimTime};
use topology::{henri, BindingPolicy, Placement};

/// Record `f` on a fresh thread (fresh thread-local recorder, immune to
/// state leaked by other tests or earlier proptest cases).
fn record<T: Send>(f: impl FnOnce() -> T + Send) -> (T, Journal) {
    std::thread::scope(|s| {
        s.spawn(|| {
            telemetry::install();
            let v = f();
            (v, telemetry::take().expect("recorder installed"))
        })
        .join()
        .expect("recording thread")
    })
}

/// Run a faulty rendezvous ping-pong and return its journal (None when the
/// fault plan made the run exceed its time budget — still a valid outcome).
fn faulty_pingpong(seed: u64, drop_cts: f64, drop_rts: f64, size: usize) -> Option<Journal> {
    let (res, journal) = record(|| {
        let mut c = Cluster::new(
            &henri(),
            Governor::Userspace(2.3),
            UncorePolicy::Fixed(2.4),
            Placement {
                comm_thread: BindingPolicy::NearNic,
                data: BindingPolicy::NearNic,
            },
        );
        c.apply_faults(
            &FaultPlan::new(seed)
                .with_cts_drop(drop_cts)
                .with_rts_drop(drop_rts),
        )
        .expect("valid plan");
        c.set_time_budget(Some(SimTime::SEC * 5));
        let res = pingpong::try_run(
            &mut c,
            PingPongConfig {
                size,
                reps: 2,
                warmup: 0,
                mtag: 0x11,
            },
        );
        drop(c);
        res
    });
    res.ok().map(|_| journal)
}

/// Structural invariants every journal must satisfy, regardless of what
/// was simulated:
/// - sync spans obey stack discipline per lane and all close;
/// - async spans pair Begin/End on the `(cat, id)` key;
/// - counter snapshots are monotone per name and the last snapshot equals
///   the journal's final cumulative value;
/// - no record sits past `end_time()`.
fn assert_journal_invariants(j: &Journal) {
    let mut stacks: HashMap<String, Vec<&'static str>> = HashMap::new();
    let mut open_async: HashMap<(&'static str, u64), u32> = HashMap::new();
    let mut last_counter: HashMap<&'static str, u64> = HashMap::new();
    let end = j.end_time();
    for r in &j.records {
        assert!(r.t <= end, "record at {:?} past end_time {:?}", r.t, end);
        match &r.kind {
            RecordKind::Begin { cat, lane, .. } => {
                stacks.entry(lane.to_string()).or_default().push(cat);
            }
            RecordKind::End { cat, lane } => {
                let top = stacks.get_mut(&lane.to_string()).and_then(|s| s.pop());
                assert_eq!(top, Some(*cat), "End without matching Begin on {}", lane);
            }
            RecordKind::AsyncBegin { cat, id, .. } => {
                *open_async.entry((cat, *id)).or_insert(0) += 1;
            }
            RecordKind::AsyncEnd { cat, id, .. } => {
                let open = open_async
                    .get_mut(&(*cat, *id))
                    .unwrap_or_else(|| panic!("async end without begin: {} #{}", cat, id));
                assert!(*open > 0, "async span {} #{} closed twice", cat, id);
                *open -= 1;
            }
            RecordKind::Counter { name, value } => {
                if let Some(prev) = last_counter.insert(name, *value) {
                    assert!(
                        *value >= prev,
                        "counter {} regressed: {} -> {}",
                        name,
                        prev,
                        value
                    );
                }
            }
            RecordKind::Complete { .. } | RecordKind::Instant { .. } | RecordKind::Mark { .. } => {}
        }
    }
    for (lane, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed sync span(s) on {}: {:?}", lane, stack);
    }
    for ((cat, id), open) in &open_async {
        assert_eq!(*open, 0, "unclosed async span {} #{}", cat, id);
    }
    for (name, last) in &last_counter {
        assert_eq!(
            j.counters.get(name),
            Some(last),
            "final snapshot of {} disagrees with cumulative map",
            name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Journals of fault-injected rendezvous runs keep every structural
    /// invariant: spans nest, async pairs match, counters are monotone.
    #[test]
    fn faulty_run_journal_is_well_formed(
        seed in 0u64..1_000_000,
        drop_cts in 0.0f64..0.5,
        drop_rts in 0.0f64..0.3,
    ) {
        if let Some(j) = faulty_pingpong(seed, drop_cts, drop_rts, 1 << 20) {
            prop_assert!(!j.is_empty());
            assert_journal_invariants(&j);
            // A rendezvous transfer ran, so the wire protocol must appear.
            prop_assert!(j.counters.contains_key("engine.events"));
            prop_assert!(j.categories().contains(&"net.xfer"));
        }
    }

    /// Two recordings of the same seeded configuration are byte-identical —
    /// the journal is a pure function of (topology, config, fault seed).
    #[test]
    fn same_seed_journals_are_byte_identical(
        seed in 0u64..1_000_000,
        drop_cts in 0.0f64..0.4,
    ) {
        let a = faulty_pingpong(seed, drop_cts, 0.1, 256 << 10);
        let b = faulty_pingpong(seed, drop_cts, 0.1, 256 << 10);
        match (a, b) {
            (Some(a), Some(b)) => prop_assert_eq!(a.to_text(), b.to_text()),
            (None, None) => {}
            _ => prop_assert!(false, "one run timed out, the other did not"),
        }
    }

    /// `quantile` against a sorted reference: endpoints are min/max, the
    /// result is bounded by its bracketing order statistics, and the
    /// function is monotone in `q`.
    #[test]
    fn quantile_matches_sorted_reference(
        v in prop::collection::vec(-1e6f64..1e6, 1..64),
        q in 0.0f64..=1.0,
    ) {
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        prop_assert_eq!(quantile(&sorted, 0.0), sorted[0]);
        prop_assert_eq!(quantile(&sorted, 1.0), sorted[n - 1]);
        // Linear interpolation between the bracketing order statistics.
        let h = q * (n as f64 - 1.0);
        let (lo, hi) = (h.floor() as usize, h.ceil() as usize);
        let x = quantile(&sorted, q);
        prop_assert!(x >= sorted[lo] - 1e-9 && x <= sorted[hi] + 1e-9,
            "quantile({}) = {} outside [{}, {}]", q, x, sorted[lo], sorted[hi]);
        // Monotonicity over a q-grid.
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let qi = i as f64 / 10.0;
            let xi = quantile(&sorted, qi);
            prop_assert!(xi >= prev, "quantile not monotone at q={}", qi);
            prev = xi;
        }
    }

    /// Histogram text lines in `to_text` agree with `quantile` applied to
    /// the sorted samples — the journal's rollup is not a second
    /// implementation that can drift.
    #[test]
    fn journal_histogram_rollup_matches_quantile(
        samples in prop::collection::vec(0.0f64..1e3, 1..32),
    ) {
        let (_, j) = record(|| {
            for s in &samples {
                telemetry::sample("prop.lat_us", *s);
            }
        });
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected = format!(
            "hist prop.lat_us n={} p0={:?} p10={:?} p50={:?} p90={:?} p100={:?}",
            sorted.len(),
            quantile(&sorted, 0.0),
            quantile(&sorted, 0.1),
            quantile(&sorted, 0.5),
            quantile(&sorted, 0.9),
            quantile(&sorted, 1.0),
        );
        let text = j.to_text();
        prop_assert!(text.contains(&expected), "rollup drifted:\n{}\nwanted {}", text, expected);
    }
}
