//! Golden-trace regression tests: the telemetry journal of a fixed
//! configuration is a pure function of that configuration, so its canonical
//! text form can be diffed byte-for-byte against committed fixtures. Any
//! change to event ordering, protocol phase structure, timer scheduling or
//! fluid-rate arithmetic shows up here as a readable diff.
//!
//! Regenerate fixtures after an *intentional* model change with
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_traces
//! ```
//!
//! and review the diff like any other code change.

mod support;

use freq::{Governor, UncorePolicy};
use interference::campaign::{run_points_with, run_set_with_report, CampaignOptions};
use interference::experiments::{self, Fidelity};
use mpisim::collective::{self, Schedule};
use mpisim::pingpong::{self, PingPongConfig};
use mpisim::Cluster;
use simcore::telemetry::{self, RecordKind};
use simcore::{FaultPlan, SimTime};
use topology::fabric::FabricPreset;
use topology::{henri, BindingPolicy, Placement};

fn cluster() -> Cluster {
    Cluster::new(
        &henri(),
        Governor::Userspace(2.3),
        UncorePolicy::Fixed(2.4),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    )
}

/// A telemetry counter line: `"{t} C {name} = {value}"` (mid-stream
/// snapshot) or `"counter {name} = {value}"` (final total).
fn is_counter_line(line: &str) -> bool {
    let rest = if let Some(r) = line.strip_prefix("counter ") {
        r
    } else {
        // "{t} C {name} = {value}": timestamp, then the C record marker.
        let Some((ts, r)) = line.split_once(" C ") else {
            return false;
        };
        if ts.is_empty() || !ts.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        r
    };
    match rest.split_once(" = ") {
        Some((name, value)) => {
            !name.is_empty()
                && !value.is_empty()
                && value.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// Assert `new` differs from `old` only by *added counter lines*: every old
/// line must survive, in order, and every inserted line must be a counter
/// line. This is the re-bless contract for a perf-only change — new
/// observability counters may appear in the journal, but no span, instant,
/// timing or ordering byte may move.
fn assert_diff_is_added_counters_only(path: &str, old: &str, new: &str) {
    let mut new_lines = new.lines();
    let mut inserted: Vec<&str> = Vec::new();
    for (i, want) in old.lines().enumerate() {
        loop {
            let Some(got) = new_lines.next() else {
                panic!(
                    "re-bless of {} dropped fixture line {}: {:?} — \
                     a perf-only change must keep every existing journal line",
                    path,
                    i + 1,
                    want
                );
            };
            if got == want {
                break;
            }
            inserted.push(got);
        }
    }
    inserted.extend(new_lines);
    for line in inserted {
        assert!(
            is_counter_line(line),
            "re-bless of {} inserts a non-counter line {:?} — \
             only added counter lines are an acceptable perf-change diff",
            path,
            line
        );
    }
}

/// Diff `text` against `tests/golden/<name>.txt`, or rewrite the fixture
/// when `GOLDEN_BLESS=1` is set. A re-bless over an existing fixture is
/// itself checked: the only acceptable diff is added counter lines.
fn assert_golden(name: &str, text: &str) {
    assert_golden_kind(name, text, true)
}

/// [`assert_golden`] for non-journal fixtures (the predict feature
/// matrix): a re-bless may rewrite any line — the counters-only contract
/// is about journal timelines, and a feature-set change legitimately
/// changes every row — but still requires the explicit `GOLDEN_BLESS=1`
/// opt-in and review of the diff.
fn assert_golden_free(name: &str, text: &str) {
    assert_golden_kind(name, text, false)
}

fn assert_golden_kind(name: &str, text: &str, journal: bool) {
    let path = format!("{}/tests/golden/{}.txt", env!("CARGO_MANIFEST_DIR"), name);
    if std::env::var_os("GOLDEN_BLESS").is_some_and(|v| v == "1") {
        if let Ok(old) = std::fs::read_to_string(&path) {
            if journal && std::env::var_os("GOLDEN_BLESS_FORCE").is_none() {
                assert_diff_is_added_counters_only(&path, &old, text);
            }
        }
        std::fs::write(&path, text).expect("bless golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({}); run GOLDEN_BLESS=1 cargo test --test golden_traces",
            path, e
        )
    });
    if text != expected {
        let diff_at = text
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| text.lines().count().min(expected.lines().count()));
        panic!(
            "journal diverged from {} at line {} (got {} lines, fixture has {}).\n\
             got:      {:?}\nexpected: {:?}\n\
             If the model change is intentional, re-bless with GOLDEN_BLESS=1.",
            path,
            diff_at + 1,
            text.lines().count(),
            expected.lines().count(),
            text.lines().nth(diff_at).unwrap_or("<eof>"),
            expected.lines().nth(diff_at).unwrap_or("<eof>"),
        );
    }
}

/// Canonical eager ping-pong (4 B payload, PIO path): golden journal.
#[test]
fn eager_pingpong_journal_matches_golden() {
    std::thread::scope(|s| {
        s.spawn(|| {
            telemetry::install();
            let mut c = cluster();
            let res = pingpong::run(&mut c, PingPongConfig::latency(3));
            assert_eq!(res.half_rtts.len(), 3);
            drop(c); // flush the engine.run span
            let j = telemetry::take().expect("recorder installed");
            assert!(j.counters["engine.events"] > 0);
            assert_eq!(j.counters.get("net.retrans"), None, "healthy run");
            assert_golden("eager_pingpong", &j.to_text());
        })
        .join()
        .expect("test thread");
    });
}

/// Rendezvous ping-pong (4 MiB payload) on a lossy fabric: CTS drops force
/// the retransmission path into the journal.
#[test]
fn rendezvous_cts_drop_journal_matches_golden() {
    std::thread::scope(|s| {
        s.spawn(|| {
            telemetry::install();
            let mut c = cluster();
            c.apply_faults(&FaultPlan::new(7).with_cts_drop(0.5))
                .expect("valid plan");
            c.set_time_budget(Some(SimTime::SEC * 5));
            let res = pingpong::try_run(
                &mut c,
                PingPongConfig {
                    size: 4 << 20,
                    reps: 2,
                    warmup: 1,
                    mtag: 0xFA,
                },
            )
            .expect("bounded drop probability completes");
            assert_eq!(res.half_rtts.len(), 2);
            drop(c);
            let j = telemetry::take().expect("recorder installed");
            assert!(
                j.counters["net.retrans"] > 0,
                "seed 7 at p=0.5 must drop at least one CTS"
            );
            let drops = j
                .records
                .iter()
                .filter(|r| matches!(&r.kind, RecordKind::Instant { name, .. } if name == "cts.drop"))
                .count();
            assert!(drops > 0, "drop instants must be recorded");
            assert_golden("rendezvous_cts_drop", &j.to_text());
        })
        .join()
        .expect("test thread");
    });
}

/// A pinned 8-rank switch cluster, matching the simcheck collective
/// oracles' world.
fn ring_cluster() -> Cluster {
    let spec = henri();
    Cluster::with_fabric(
        &spec,
        FabricPreset::Switch.spec(8).build_for(8),
        Governor::Userspace(2.3),
        UncorePolicy::Fixed(2.4),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    )
}

/// 8-rank ring allreduce (256 KiB payload, 32 KiB eager chunks) through a
/// mid-run link-degradation window: the journal pins the collective's
/// round structure, every rank's eager timeline, and the fault edges
/// where all link rates drop to 40% and recover mid-sweep.
#[test]
fn ring_allreduce_degraded_journal_matches_golden() {
    let sched = Schedule::ring_allreduce(8, 256 << 10);
    // Healthy reference first (no recorder): the window must land inside
    // the run and must actually cost time, or the fixture pins nothing.
    let healthy = collective::run(&mut ring_cluster(), &sched, 0x200, 0x4000)
        .expect("healthy collective completes");
    let window = (SimTime(20_000_000), SimTime(50_000_000)); // [20 us, 50 us)
    assert!(healthy > window.1, "degradation window must end mid-run");

    std::thread::scope(|s| {
        s.spawn(|| {
            telemetry::install();
            let mut c = ring_cluster();
            c.apply_faults(&FaultPlan::new(11).with_link_degradation(window.0, window.1, 0.4))
                .expect("valid plan");
            let degraded = collective::run(&mut c, &sched, 0x200, 0x4000)
                .expect("degraded collective completes");
            assert!(
                degraded > healthy,
                "running 30 us at 40% link rate must cost time ({:?} vs {:?})",
                degraded,
                healthy
            );
            drop(c);
            let j = telemetry::take().expect("recorder installed");
            let edges = |name: &str| {
                j.records
                    .iter()
                    .filter(|r| matches!(&r.kind, RecordKind::Instant { name: n, .. } if *n == name))
                    .count()
            };
            assert_eq!(edges("link.degrade"), 1, "one degradation onset");
            assert_eq!(edges("link.restore"), 1, "one recovery");
            assert_golden("ring_allreduce_degraded", &j.to_text());
        })
        .join()
        .expect("test thread");
    });
}

/// One Quick fig4 contention point, including the baselines it computes:
/// golden journal of the full campaign merge for a single-point slice.
#[test]
fn fig4_quick_campaign_journal_matches_golden() {
    let fig4 = experiments::find("fig4").expect("registered");
    let opts = CampaignOptions::serial(Fidelity::Quick).with_telemetry(true);
    let (runs, report) = run_set_with_report(&[fig4], &opts);
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].failed_points, 0);
    let j = report.journal.expect("telemetry enabled");
    // The merged journal must carry spans from the campaign, engine, netsim
    // and mpisim layers (the ISSUE's four-layer floor).
    let cats = j.categories();
    for needed in ["campaign", "engine", "net.xfer", "mpi.send"] {
        assert!(cats.contains(&needed), "missing {} in {:?}", needed, cats);
    }
    assert_golden("fig4_quick_campaign", &j.to_text());
}

/// The ISSUE's headline oracle: the merged campaign journal is
/// byte-identical between `--jobs 1` and `--jobs 4`, even though which
/// worker computes each shared baseline is a scheduling race.
#[test]
fn fig4_journal_byte_identical_across_jobs() {
    let fig4 = experiments::find("fig4").expect("registered");
    let text = |jobs: usize| {
        let opts = CampaignOptions::new(Fidelity::Quick, jobs).with_telemetry(true);
        let (_, report) = run_set_with_report(&[fig4], &opts);
        report.journal.expect("telemetry enabled").to_text()
    };
    let serial = text(1);
    let parallel = text(4);
    assert!(
        serial == parallel,
        "jobs=4 journal diverged from jobs=1 ({} vs {} bytes)",
        parallel.len(),
        serial.len()
    );
}

/// Per-point journals surface through `run_points_with`, and the Chrome
/// export of a real campaign journal parses as valid JSON with the
/// trace-event envelope.
#[test]
fn chrome_export_of_campaign_journal_is_valid() {
    let fig4 = experiments::find("fig4").expect("registered");
    let opts = CampaignOptions::serial(Fidelity::Quick).with_telemetry(true);
    let outcomes = run_points_with(fig4, &opts);
    assert!(outcomes.iter().all(|o| o.journal.is_some()));

    let (_, report) = run_set_with_report(&[fig4], &opts);
    let json = report.journal.expect("telemetry enabled").to_chrome_json();
    let doc = support::parse(&json);
    let events = doc.get("traceEvents").as_arr();
    assert!(events.len() > 100, "expected a rich trace, got {}", events.len());
    let mut phases: Vec<&str> = events
        .iter()
        .map(|e| e.get("ph").as_str())
        .collect();
    phases.sort_unstable();
    phases.dedup();
    // fig4 drives mpisim directly (no taskrt workers), so sync B/E task
    // spans are absent; async spans, completes, instants, counters and
    // metadata must all be present.
    for needed in ["M", "X", "b", "e", "i", "C"] {
        assert!(phases.contains(&needed), "missing ph {:?} in {:?}", needed, phases);
    }
    // Every event names a process and sits at a non-negative timestamp.
    for e in events {
        let obj = e.as_obj();
        assert!(obj.contains_key("pid") || obj["ph"] == support::Json::Str("C".into()));
        if let Some(support::Json::Num(ts)) = obj.get("ts") {
            assert!(*ts >= 0.0);
        }
    }
}

/// The predictor's harvest stage on the fig4 configuration (henri, STREAM
/// triad, Quick): byte-stable feature-matrix dump. Pins the feature
/// names, their order, every extracted counter rate and both ground-truth
/// penalties — any drift in the telemetry counters, the alone-step
/// protocol or the penalty arithmetic shows up as a readable row diff.
#[test]
fn predict_feature_matrix_matches_golden() {
    use interference::campaign::run_outcomes_with_store;
    use interference::experiments::harvest::{self, Family, Harvest, PairSpec};
    use topology::presets::Preset;

    let exp = Harvest {
        filter: Some(|s: &PairSpec| s.preset == Preset::Henri && s.family == Family::Stream),
    };
    let opts = CampaignOptions::serial(Fidelity::Quick);
    let outcomes = run_outcomes_with_store(&exp, &opts, None);
    assert!(outcomes.iter().all(|o| o.value.is_some()), "harvest must complete");
    let pairs = harvest::collect_pairs(&outcomes);
    assert_eq!(pairs.len(), 16, "4 placements x 2 core counts x 2 metrics");
    assert_golden_free("predict_feature_matrix", &harvest::feature_matrix_text(&pairs));
}
