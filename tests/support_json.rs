//! Unit tests for the shared minimal JSON parser in `tests/support`.
//!
//! The parser validates every machine-readable export in the repo, so its
//! own strictness needs pinning: malformed documents — trailing garbage
//! after the top-level value, duplicate object keys — must fail loudly
//! rather than silently yield a plausible value (a duplicate key used to
//! keep the *last* occurrence, which would mask an exporter writing a
//! field twice with different values).

mod support;

use std::panic::catch_unwind;

use support::{parse, Json};

#[test]
fn parses_a_representative_document() {
    let doc = parse(
        r#"{"id":"fig1","pass":true,"nothing":null,
            "series":[{"x":1e-3,"ys":[1,2.5,-3]},{"x":0.25,"ys":[]}],
            "note":"unicode µs and \"escapes\" \\ \n"}"#,
    );
    assert_eq!(doc.get("id").as_str(), "fig1");
    assert_eq!(*doc.get("pass"), Json::Bool(true));
    assert_eq!(*doc.get("nothing"), Json::Null);
    let series = doc.get("series").as_arr();
    assert_eq!(series.len(), 2);
    assert_eq!(*series[0].get("x"), Json::Num(1e-3));
    assert_eq!(series[0].get("ys").as_arr().len(), 3);
    assert!(doc.get("note").as_str().contains("µs and \"escapes\""));
}

#[test]
fn rejects_trailing_garbage() {
    let err = catch_unwind(|| parse("{\"a\": 1} x")).unwrap_err();
    let msg = err.downcast_ref::<String>().expect("panic message");
    assert!(msg.contains("trailing garbage"), "{}", msg);
    // A second complete value after the first is garbage too.
    assert!(catch_unwind(|| parse("[1, 2] [3]")).is_err());
    assert!(catch_unwind(|| parse("1 2")).is_err());
}

#[test]
fn rejects_duplicate_object_keys() {
    let err = catch_unwind(|| parse(r#"{"a": 1, "a": 2}"#)).unwrap_err();
    let msg = err.downcast_ref::<String>().expect("panic message");
    assert!(msg.contains("duplicate object key \"a\""), "{}", msg);
    // Duplicates nested below the top level are caught as well.
    assert!(catch_unwind(|| parse(r#"{"outer": {"k": null, "k": null}}"#)).is_err());
    // Same key at *different* nesting levels is fine.
    let ok = parse(r#"{"k": {"k": 1}}"#);
    assert_eq!(*ok.get("k").get("k"), Json::Num(1.0));
}

#[test]
fn rejects_other_malformed_documents() {
    assert!(catch_unwind(|| parse("")).is_err());
    assert!(catch_unwind(|| parse("{\"a\":}")).is_err());
    assert!(catch_unwind(|| parse("{\"a\" 1}")).is_err());
    assert!(catch_unwind(|| parse("[1,")).is_err());
    assert!(catch_unwind(|| parse("\"unterminated")).is_err());
    assert!(catch_unwind(|| parse("tru")).is_err());
    assert!(catch_unwind(|| parse("nul")).is_err());
    assert!(catch_unwind(|| parse("1.2.3")).is_err());
    assert!(catch_unwind(|| parse("{1: 2}")).is_err());
}
