//! End-to-end integration tests: each test reproduces one headline finding
//! of the paper across the whole stack (topology → freq → memsim → netsim
//! → mpisim → taskrt → interference).

use freq::{Governor, UncorePolicy};
use kernels::stream::{workload, StreamKernel};
use mpisim::pingpong::{self, PingPongConfig};
use mpisim::Cluster;
use simcore::Summary;
use topology::{henri, BindingPolicy, Placement, Preset};

use interference::protocol::{self, ProtocolConfig};

fn near_near() -> Placement {
    Placement {
        comm_thread: BindingPolicy::NearNic,
        data: BindingPolicy::NearNic,
    }
}

/// §3.1: core frequency moves latency (~+72 % from 2.3 to 1.0 GHz), uncore
/// moves bandwidth slightly (~4 %).
#[test]
fn finding_frequency_effects() {
    let lat_at = |core: f64, uncore: f64| {
        let mut c = Cluster::new(
            &henri(),
            Governor::Userspace(core),
            UncorePolicy::Fixed(uncore),
            near_near(),
        );
        pingpong::run(&mut c, PingPongConfig::latency(8)).median_latency_us()
    };
    let bw_at = |core: f64, uncore: f64| {
        let mut c = Cluster::new(
            &henri(),
            Governor::Userspace(core),
            UncorePolicy::Fixed(uncore),
            near_near(),
        );
        pingpong::run(&mut c, PingPongConfig::bandwidth(2)).median_bandwidth()
    };
    let ratio = lat_at(1.0, 2.4) / lat_at(2.3, 2.4);
    assert!((1.4..2.2).contains(&ratio), "core-frequency latency ratio {}", ratio);
    let uncore_lat = lat_at(2.3, 1.2) / lat_at(2.3, 2.4);
    assert!((uncore_lat - 1.0).abs() < 0.12, "uncore latency ratio {}", uncore_lat);
    let bw_ratio = bw_at(2.3, 2.4) / bw_at(2.3, 1.2);
    assert!((1.005..1.10).contains(&bw_ratio), "uncore bandwidth ratio {}", bw_ratio);
}

/// §3.2: latency is *better* beside CPU-bound computation (package-idle
/// effect), and the computation is unaffected.
#[test]
fn finding_cpu_bound_compute_helps_latency() {
    let w = kernels::primes::workload(0, 30_000, 1);
    let mut cfg = ProtocolConfig::new(henri(), Some(w));
    cfg.compute_cores = 20;
    cfg.pingpong = PingPongConfig::latency(6);
    cfg.reps = 3;
    let r = protocol::run(&cfg);
    let alone = Summary::of(&r.lat_alone()).median;
    let together = Summary::of(&r.lat_together()).median;
    assert!(
        together < alone,
        "latency together {} should beat alone {}",
        together,
        alone
    );
}

/// §4.2: memory-bound computation on all cores crushes network bandwidth
/// and doubles latency.
#[test]
fn finding_memory_contention() {
    let w = workload(StreamKernel::Triad, 2_000_000, henri().near_numa(), 1);
    let mut cfg = ProtocolConfig::new(henri(), Some(w));
    cfg.placement = Placement::fig4_default();
    cfg.compute_cores = 35;
    cfg.reps = 3;

    cfg.pingpong = PingPongConfig::latency(6);
    let lat = protocol::run(&cfg);
    let l_ratio = Summary::of(&lat.lat_together()).median / Summary::of(&lat.lat_alone()).median;
    assert!(l_ratio > 1.5, "latency inflation {}", l_ratio);

    cfg.pingpong = PingPongConfig::bandwidth(2);
    let bw = protocol::run(&cfg);
    let b_ratio = Summary::of(&bw.bw_together()).median / Summary::of(&bw.bw_alone()).median;
    assert!(b_ratio < 0.5, "bandwidth ratio {}", b_ratio);
}

/// §4.3: the four placements order as in Table 1.
#[test]
fn finding_placement_ordering() {
    let machine = henri();
    let measure = |placement: Placement| {
        let data = match placement.data {
            BindingPolicy::NearNic => machine.near_numa(),
            BindingPolicy::FarFromNic => machine.far_numa(),
            BindingPolicy::Numa(n) => n,
        };
        let w = workload(StreamKernel::Triad, 2_000_000, data, 1);
        let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
        cfg.placement = placement;
        cfg.compute_cores = 35;
        cfg.reps = 2;
        cfg.pingpong = PingPongConfig::latency(6);
        let lat = protocol::run(&cfg);
        cfg.pingpong = PingPongConfig::bandwidth(2);
        let bw = protocol::run(&cfg);
        (
            Summary::of(&lat.lat_together()).median / Summary::of(&lat.lat_alone()).median,
            1.0 - Summary::of(&bw.bw_together()).median / Summary::of(&bw.bw_alone()).median,
        )
    };
    let combos = Placement::all_combinations();
    let (nn_lat, nn_loss) = measure(combos[0].1); // near/near
    let (nf_lat, _) = measure(combos[1].1); // data near, thread far
    let (fn_lat, fn_loss) = measure(combos[2].1); // data far, thread near
    // Far thread inflates latency more than near thread.
    assert!(nf_lat > nn_lat, "thread far {} vs near {}", nf_lat, nn_lat);
    // Far data loses more bandwidth than near data.
    assert!(fn_loss > nn_loss, "data far {} vs near {}", fn_loss, nn_loss);
    let _ = fn_lat;
}

/// §5.2: the task runtime adds tens of µs of latency, scaled per machine.
#[test]
fn finding_runtime_overheads_per_machine() {
    for (preset, expected_us) in [(Preset::Henri, 38.0), (Preset::Billy, 23.0), (Preset::Pyxis, 45.0)] {
        let machine = preset.spec();
        let mut c = Cluster::new(
            &machine,
            Governor::Performance { turbo: true },
            UncorePolicy::Auto,
            near_near(),
        );
        let plain = pingpong::run(&mut c, PingPongConfig::latency(5)).median_latency_us();
        let mut rt = taskrt::Runtime::new(taskrt::RuntimeConfig::for_machine(&machine));
        let through =
            taskrt::pingpong::run(&mut c, &mut rt, PingPongConfig::latency(5)).median_latency_us();
        let overhead = through - plain;
        assert!(
            (overhead - expected_us).abs() / expected_us < 0.4,
            "{}: overhead {} µs (paper {})",
            machine.name,
            overhead,
            expected_us
        );
    }
}

/// §6: CG's communications suffer far more than GEMM's.
#[test]
fn finding_cg_vs_gemm() {
    use taskrt::programs::{attach_n_workers, run, UseCaseConfig};
    let go = |cfg: UseCaseConfig| {
        let mut c = Cluster::new(
            &henri(),
            Governor::Performance { turbo: true },
            UncorePolicy::Auto,
            Placement::fig4_default(),
        );
        let mut rt = taskrt::Runtime::new(taskrt::RuntimeConfig::for_machine(&c.spec));
        attach_n_workers(&mut c, &mut rt, cfg.workers);
        run(&mut c, &mut rt, cfg)
    };
    let cg1 = go(UseCaseConfig::cg(1, 2));
    let cg35 = go(UseCaseConfig::cg(35, 2));
    let gm1 = go(UseCaseConfig::gemm(1, 2));
    let gm35 = go(UseCaseConfig::gemm(35, 2));
    let cg_loss = 1.0 - cg35.mean_send_bw / cg1.mean_send_bw;
    let gm_loss = 1.0 - gm35.mean_send_bw / gm1.mean_send_bw;
    assert!(cg_loss > 0.6, "CG loss {}", cg_loss);
    assert!(gm_loss < 0.4, "GEMM loss {}", gm_loss);
    assert!(cg35.stall_fraction > gm35.stall_fraction);
}

/// Cross-cutting: the Omni-Path preset shows the "wide bandwidth
/// deviation" the paper reports, InfiniBand does not.
#[test]
fn finding_omnipath_jitter() {
    let band = |preset: Preset| {
        let machine = preset.spec();
        let mut cfg = ProtocolConfig::new(machine, None);
        cfg.pingpong = PingPongConfig::bandwidth(2);
        cfg.reps = 9;
        let r = protocol::run(&cfg);
        Summary::of(&r.bw_alone()).band_rel()
    };
    let ib = band(Preset::Henri);
    let opa = band(Preset::Bora);
    assert!(opa > ib * 3.0, "opa band {} vs ib {}", opa, ib);
}
