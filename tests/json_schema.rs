//! Schema-stability snapshot for the machine-readable exports.
//!
//! Downstream tooling (plot scripts, CI dashboards) keys off the exact
//! field names of `repro --json` and `repro --trace`. These tests pin the
//! key set of every object level so an accidental rename or dropped field
//! fails loudly instead of silently producing empty plots.

mod support;

use interference::campaign::{run_set_with_report, CampaignOptions};
use interference::experiments::{self, Fidelity};
use interference::results::figures_to_json;
use support::Json;

/// Render fig1 at Quick fidelity and parse its JSON export.
fn fig1_doc() -> Json {
    let fig1 = experiments::find("fig1").expect("registered");
    let opts = CampaignOptions::serial(Fidelity::Quick);
    let (runs, _) = run_set_with_report(&[fig1], &opts);
    let figures: Vec<_> = runs.iter().flat_map(|r| r.figures.clone()).collect();
    assert!(!figures.is_empty(), "fig1 produced no figures");
    support::parse(&interference::results::figures_to_json(&figures))
}

#[test]
fn figure_json_key_sets_are_stable() {
    let doc = fig1_doc();
    let figures = doc.as_arr();
    assert!(!figures.is_empty());
    for fig in figures {
        assert_eq!(
            fig.keys(),
            ["checks", "id", "notes", "runs", "series", "title", "xlabel", "ylabel"],
            "figure-level schema changed"
        );
        for series in fig.get("series").as_arr() {
            assert_eq!(series.keys(), ["name", "points"], "series-level schema changed");
            for point in series.get("points").as_arr() {
                assert_eq!(
                    point.keys(),
                    ["d1", "d9", "max", "median", "min", "n", "x"],
                    "point-level schema changed"
                );
            }
        }
        for check in fig.get("checks").as_arr() {
            assert_eq!(check.keys(), ["detail", "name", "pass"], "check-level schema changed");
        }
        for run in fig.get("runs").as_arr() {
            assert_eq!(
                run.keys(),
                ["error", "rep", "retrans_bytes", "retries", "retry_wait_s", "seed", "status"],
                "run-level schema changed"
            );
        }
    }
}

#[test]
fn figure_json_values_are_well_typed() {
    let doc = fig1_doc();
    for fig in doc.as_arr() {
        assert!(!fig.get("id").as_str().is_empty());
        for series in fig.get("series").as_arr() {
            for point in series.get("points").as_arr() {
                for key in ["x", "median", "d1", "d9", "min", "max", "n"] {
                    match point.get(key) {
                        Json::Num(v) => assert!(v.is_finite(), "{} not finite", key),
                        other => panic!("{} is not a number: {:?}", key, other),
                    }
                }
            }
        }
        for check in fig.get("checks").as_arr() {
            assert!(matches!(check.get("pass"), Json::Bool(_)));
        }
    }
}

#[test]
fn figures_to_json_of_empty_set_is_valid() {
    let doc = support::parse(&figures_to_json(&[]));
    assert_eq!(doc.as_arr().len(), 0);
}
