//! Tier-2: durability of campaign results. Every registry experiment's
//! value codec must roundtrip exactly (bit-for-bit — resume byte-identity
//! rests on it), and a store-backed resumed campaign must render figures
//! byte-identical to an uninterrupted run at any worker count.

use interference::campaign::{self, CampaignOptions, StoreCtx};
use interference::experiments::{self, Fidelity};
use interference::results::figures_to_json;
use interference::store::ResultStore;

/// A fresh store under a unique temp dir (tests run concurrently).
fn temp_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!("ifstore-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ResultStore::open(dir).expect("open temp store")
}

/// Every registered experiment must be durable: each computed point value
/// encodes, decodes, and re-encodes to identical bytes. A lossy codec
/// would silently break resume byte-identity, so this is an exact check
/// over the real Quick sweep values of all 15 experiments.
#[test]
fn every_registry_experiment_value_roundtrips_exactly() {
    for exp in experiments::all_experiments() {
        let outcomes = campaign::run_points(exp, Fidelity::Quick);
        let mut encoded = 0usize;
        for o in &outcomes {
            let Some(value) = &o.value else { continue };
            let bytes = exp
                .encode_value(value)
                .unwrap_or_else(|| panic!("{}: point {} value not encodable", exp.name(), o.index));
            let decoded = exp
                .decode_value(&bytes)
                .unwrap_or_else(|| panic!("{}: point {} bytes not decodable", exp.name(), o.index));
            let bytes2 = exp
                .decode_value(&bytes)
                .and_then(|v| exp.encode_value(&v))
                .unwrap_or_else(|| panic!("{}: point {} re-encode failed", exp.name(), o.index));
            assert_eq!(
                bytes, bytes2,
                "{}: point {} codec is not bit-exact",
                exp.name(),
                o.index
            );
            // The decoded value must itself be encodable (same payload).
            assert_eq!(exp.encode_value(&decoded).unwrap(), bytes);
            encoded += 1;
        }
        assert!(
            encoded > 0,
            "{}: no point value was durable — resume would recompute everything",
            exp.name()
        );
        // Truncated payloads must decode to None, never panic or misparse.
        if let Some(o) = outcomes.iter().find(|o| o.value.is_some()) {
            let bytes = exp.encode_value(o.value.as_ref().unwrap()).unwrap();
            for cut in [0, 1, bytes.len() / 2, bytes.len().saturating_sub(1)] {
                if cut < bytes.len() {
                    assert!(
                        exp.decode_value(&bytes[..cut]).is_none(),
                        "{}: truncated payload ({} of {} bytes) decoded",
                        exp.name(),
                        cut,
                        bytes.len()
                    );
                }
            }
        }
    }
}

/// Interrupt-and-resume, in process: persist a full campaign, delete some
/// entries (the points a crash would have lost), then resume at a
/// different worker count — the rendered figures must be byte-identical
/// to an uninterrupted run, with the surviving entries restored.
#[test]
fn resumed_campaign_is_byte_identical_across_jobs() {
    let exps: Vec<_> = ["fig4", "fig9"]
        .iter()
        .map(|n| experiments::find(n).expect("registered"))
        .collect();
    let clean = figures_to_json(
        &campaign::run_set(&exps, &CampaignOptions::serial(Fidelity::Quick))
            .iter()
            .flat_map(|r| r.figures.clone())
            .collect::<Vec<_>>(),
    );

    let store = temp_store("resume-jobs");
    let ctx = StoreCtx { store: &store, resume: true };
    let opts = CampaignOptions::serial(Fidelity::Quick);
    let (runs, _) = campaign::run_set_with_store(&exps, &opts, Some(ctx));
    let total_points: usize = runs.iter().map(|r| r.points).sum();
    assert_eq!(store.stats().persisted as usize, total_points);

    // A crash loses the in-flight tail: drop the last few entries.
    let mut entries: Vec<_> = std::fs::read_dir(store.dir())
        .expect("read store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "res"))
        .collect();
    entries.sort();
    let lost = entries.len() / 3;
    for p in entries.iter().take(lost) {
        std::fs::remove_file(p).expect("drop entry");
    }

    // Resume in parallel: restored + recomputed points must finalize to
    // the same bytes as the clean serial run.
    let popts = CampaignOptions::new(Fidelity::Quick, 4);
    let (runs2, _) = campaign::run_set_with_store(&exps, &popts, Some(ctx));
    let restored: usize = runs2.iter().map(|r| r.restored_points).sum();
    assert_eq!(restored, total_points - lost);
    let resumed = figures_to_json(
        &runs2.iter().flat_map(|r| r.figures.clone()).collect::<Vec<_>>(),
    );
    assert_eq!(clean, resumed, "resumed figures differ from a clean run");
    let _ = std::fs::remove_dir_all(store.dir());
}
