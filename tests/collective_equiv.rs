//! Tier-2: whole-campaign byte-identity of the collective experiments.
//!
//! The collective × contention and collective × DVFS extensions run
//! N-rank schedules over routed fabrics — the layer stack this repo added
//! last (fabric routing → netsim multi-hop flows → mpisim collectives →
//! campaign engine). These tests pin the stack's determinism guarantee at
//! full-campaign scale: the rendered figure JSON must be byte-identical
//!
//! * under either engine timer queue (timing wheel vs `FORCE_HEAP`),
//! * at any worker count (`--jobs 1` vs `--jobs 4`), and
//! * across a crash-and-resume through the result store.
//!
//! The 64-rank sweep points make this the widest determinism surface in
//! the suite: one reordered event anywhere in 8 000+ messages shows up as
//! a differing byte here.

use std::sync::atomic::Ordering;

use interference::campaign::{self, CampaignOptions, StoreCtx};
use interference::experiments::{self, Fidelity};
use interference::results::figures_to_json;
use interference::store::ResultStore;
use mpisim::collective::FORCE_SCHEDULE_REBUILD;
use mpisim::FORCE_SCAN_MATCH;
use netsim::FORCE_ROUTE_LOOKUP;
use simcore::queue::FORCE_HEAP;

fn collective_experiments() -> Vec<&'static dyn campaign::Experiment> {
    ["collective_contention", "collective_dvfs"]
        .iter()
        .map(|n| experiments::find(n).expect("registered"))
        .collect()
}

fn campaign_json(jobs: usize) -> String {
    let figures: Vec<_> = campaign::run_set(
        &collective_experiments(),
        &CampaignOptions::new(Fidelity::Quick, jobs),
    )
    .into_iter()
    .flat_map(|r| r.figures)
    .collect();
    figures_to_json(&figures)
}

fn assert_identical(a: &str, b: &str, what: &str) {
    assert!(
        a == b,
        "{what}: first differing byte at {} ({} vs {} bytes)",
        a.bytes()
            .zip(b.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or(a.len().min(b.len())),
        a.len(),
        b.len()
    );
}

/// Timing-wheel vs binary-heap timer queue: same campaign bytes.
#[test]
fn collective_campaign_json_identical_with_either_queue() {
    let wheel = campaign_json(1);
    FORCE_HEAP.store(true, Ordering::Relaxed);
    let heap = campaign_json(1);
    FORCE_HEAP.store(false, Ordering::Relaxed);
    assert_identical(&wheel, &heap, "timer queue changed collective campaign output");
}

/// `--jobs 1` vs `--jobs 4`: same campaign bytes, even though the workers
/// race for the memoized STREAM-alone baselines.
#[test]
fn collective_campaign_json_identical_across_jobs() {
    let serial = campaign_json(1);
    let parallel = campaign_json(4);
    assert_identical(&serial, &parallel, "parallel collective campaign diverged");
}

/// Persist, lose the in-flight tail, resume at a different worker count:
/// restored + recomputed points must finalize to the clean run's bytes.
#[test]
fn collective_campaign_resumes_byte_identical() {
    let exps = collective_experiments();
    let clean = campaign_json(1);

    let dir = std::env::temp_dir().join(format!("ifstore-collective-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("open temp store");
    let ctx = StoreCtx { store: &store, resume: true };
    let (runs, _) = campaign::run_set_with_store(
        &exps,
        &CampaignOptions::serial(Fidelity::Quick),
        Some(ctx),
    );
    let total_points: usize = runs.iter().map(|r| r.points).sum();
    assert_eq!(store.stats().persisted as usize, total_points);

    // A crash loses the tail: drop the last third of the entries.
    let mut entries: Vec<_> = std::fs::read_dir(store.dir())
        .expect("read store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "res"))
        .collect();
    entries.sort();
    let lost = entries.len() / 3;
    assert!(lost > 0, "campaign too small to lose a tail");
    for p in entries.iter().rev().take(lost) {
        std::fs::remove_file(p).expect("drop entry");
    }

    let (runs2, _) = campaign::run_set_with_store(
        &exps,
        &CampaignOptions::new(Fidelity::Quick, 4),
        Some(ctx),
    );
    let restored: usize = runs2.iter().map(|r| r.restored_points).sum();
    assert_eq!(restored, total_points - lost);
    let resumed = figures_to_json(
        &runs2.iter().flat_map(|r| r.figures.clone()).collect::<Vec<_>>(),
    );
    assert_identical(&clean, &resumed, "resumed collective campaign diverged");
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Runs `f` with the three collective fast paths pinned to their reference
/// modes: linear-scan message matching, per-hop route lookup, and schedule
/// rebuild on every call. The pins are snapshotted when a cluster/fabric is
/// built (rebuild is checked per call), so bracketing the whole campaign is
/// enough; they are restored before returning.
fn with_reference_paths<T>(f: impl FnOnce() -> T) -> T {
    FORCE_SCAN_MATCH.store(true, Ordering::Relaxed);
    FORCE_ROUTE_LOOKUP.store(true, Ordering::Relaxed);
    FORCE_SCHEDULE_REBUILD.store(true, Ordering::Relaxed);
    let out = f();
    FORCE_SCAN_MATCH.store(false, Ordering::Relaxed);
    FORCE_ROUTE_LOOKUP.store(false, Ordering::Relaxed);
    FORCE_SCHEDULE_REBUILD.store(false, Ordering::Relaxed);
    out
}

/// Indexed matching + interned routes + memoized schedules vs the pinned
/// reference paths: same campaign bytes. This is the ISSUE 9 equivalence
/// guarantee — the collective fast paths are pure perf, zero semantics.
#[test]
fn collective_campaign_json_identical_with_reference_paths() {
    let fast = campaign_json(1);
    let reference = with_reference_paths(|| campaign_json(1));
    assert_identical(
        &fast,
        &reference,
        "collective fast paths changed campaign output (serial)",
    );
}

/// Same pin comparison under `--jobs 4`: the worker pool must not let the
/// process-global schedule cache or the interned route arenas introduce a
/// scheduling-order dependence.
#[test]
fn collective_campaign_json_identical_with_reference_paths_parallel() {
    let fast = campaign_json(4);
    let reference = with_reference_paths(|| campaign_json(4));
    assert_identical(
        &fast,
        &reference,
        "collective fast paths changed campaign output (jobs=4)",
    );
}

/// The Quick plans cover both acceptance scales: an 8-rank henri sweep and
/// a 64-rank tiny2x2 sweep must be present (the JSON identity above is
/// only meaningful if the routed 64-rank case is actually in it).
#[test]
fn quick_plan_covers_both_scales() {
    let contention = experiments::find("collective_contention").expect("registered");
    let labels: Vec<String> = contention
        .plan(Fidelity::Quick)
        .iter()
        .map(|p| p.label.clone())
        .collect();
    assert!(labels.iter().any(|l| l.contains("henri x 8")), "{labels:?}");
    assert!(labels.iter().any(|l| l.contains("tiny2x2 x 64")), "{labels:?}");
}
