//! Whole-campaign engine replay: the timing-wheel timer queue and the
//! parallel component solver must not change a single byte of the figure
//! exports.
//!
//! Two switches, two independent equivalences:
//!
//! * `simcore::queue::FORCE_HEAP` reroutes every engine timer through the
//!   retained `BinaryHeap` + tombstone queue (`queue::HeapQueue`). Running
//!   the same campaign slice both ways and comparing the `--json` export
//!   byte-for-byte proves the hierarchical timing wheel pops the exact same
//!   (time, seq) event sequence at full-system scale — on top of the
//!   per-pop equivalence the `prop_queue_equiv` suite establishes.
//!
//! * `simcore::fluid::PARALLEL_MODE` pins the component solver to serial
//!   (1) or forced-parallel (2). Identical exports prove the scoped-thread
//!   fan-out plus deterministic component-order merge reproduces the serial
//!   float stream bit-for-bit, independent of worker count.
//!
//! fig4 exercises the timer-heavy rendezvous/eager protocol paths; fig9 is
//! the churn-heaviest experiment (per-worker polling timers cancelled and
//! restarted constantly — exactly the tombstone traffic the wheel must
//! consume lazily without reordering).

use std::sync::atomic::Ordering;

use interference::campaign::{run_set, CampaignOptions};
use interference::experiments::{self, Fidelity};
use interference::results::figures_to_json;
use simcore::fluid::PARALLEL_MODE;
use simcore::queue::FORCE_HEAP;

fn campaign_json() -> String {
    let exps: Vec<_> = ["fig4", "fig9"]
        .iter()
        .map(|n| experiments::find(n).expect("registered"))
        .collect();
    let figures: Vec<_> = run_set(&exps, &CampaignOptions::serial(Fidelity::Quick))
        .into_iter()
        .flat_map(|r| r.figures)
        .collect();
    figures_to_json(&figures)
}

fn assert_identical(fast: &str, reference: &str, what: &str) {
    assert_eq!(fast.len(), reference.len(), "{what}: different-sized exports");
    assert!(
        fast == reference,
        "{what}: first differing byte at {}",
        fast.bytes()
            .zip(reference.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(fast.len().min(reference.len()))
    );
}

#[test]
fn quick_fig4_fig9_json_identical_with_either_queue() {
    // Probe that the switch really reroutes the timer queue: under
    // FORCE_HEAP a freshly built engine reports heap backing.
    FORCE_HEAP.store(true, Ordering::Relaxed);
    let probe = simcore::Engine::new();
    assert!(probe.uses_heap_queue(), "FORCE_HEAP did not engage");
    FORCE_HEAP.store(false, Ordering::Relaxed);
    assert!(!simcore::Engine::new().uses_heap_queue());

    let wheel = campaign_json();
    FORCE_HEAP.store(true, Ordering::Relaxed);
    let heap = campaign_json();
    FORCE_HEAP.store(false, Ordering::Relaxed);
    assert_identical(&wheel, &heap, "timing wheel changed campaign output");
}

#[test]
fn quick_fig4_fig9_json_identical_parallel_vs_serial_solve() {
    // Quick-fidelity campaigns stay under the auto-mode flow threshold, so
    // pin the modes explicitly: forced-parallel must equal forced-serial.
    PARALLEL_MODE.store(1, Ordering::Relaxed);
    let serial = campaign_json();
    PARALLEL_MODE.store(2, Ordering::Relaxed);
    let parallel = campaign_json();
    PARALLEL_MODE.store(0, Ordering::Relaxed);
    assert_identical(
        &serial,
        &parallel,
        "parallel component solver changed campaign output",
    );
}
