//! Integration tests of cross-cutting properties: reproducibility of whole
//! experiments, agreement between the analytical roofline and the
//! simulator, and consistency between real kernels and their descriptors.

use freq::{Governor, UncorePolicy};
use kernels::{roofline, stream, tunable};
use mpisim::pingpong::{self, PingPongConfig};
use mpisim::Cluster;
use topology::{henri, BindingPolicy, CoreId, NumaId, Placement};

use interference::protocol::{self, ProtocolConfig};

fn near_near() -> Placement {
    Placement {
        comm_thread: BindingPolicy::NearNic,
        data: BindingPolicy::NearNic,
    }
}

/// Identical seeds yield bit-identical experiment results; different seeds
/// differ.
#[test]
fn experiments_are_reproducible() {
    let go = |seed: u64| {
        let w = stream::workload(stream::StreamKernel::Triad, 500_000, NumaId(0), 1);
        let mut cfg = ProtocolConfig::new(henri(), Some(w));
        cfg.compute_cores = 10;
        cfg.pingpong = PingPongConfig::latency(5);
        cfg.reps = 3;
        cfg.seed = seed;
        let r = protocol::run(&cfg);
        (r.lat_alone(), r.lat_together(), r.compute_bw_together())
    };
    let a = go(11);
    let b = go(11);
    assert_eq!(a, b, "same seed must reproduce exactly");
    let c = go(12);
    assert_ne!(a.0, c.0, "different seed must differ");
}

/// A single memory-bound core attains exactly its per-core bandwidth; a
/// single compute-bound core attains exactly the roofline prediction.
#[test]
fn simulator_matches_roofline_closed_form() {
    let spec = henri();
    for &ai in &[0.5f64, 2.0, 8.0, 32.0] {
        let cursor = tunable::cursor_for_intensity(ai);
        let w = tunable::workload(1_000_000, cursor, NumaId(0), 1);
        let mut cfg = ProtocolConfig::new(spec.clone(), Some(w.clone()));
        cfg.governor = Governor::Userspace(2.3);
        cfg.uncore = UncorePolicy::Fixed(2.4);
        cfg.compute_cores = 1;
        cfg.compute_both_nodes = false;
        cfg.pingpong = PingPongConfig::latency(1);
        cfg.reps = 1;
        let r = protocol::run(&cfg);
        let measured_bw = r.compute_alone[0].compute_bw_per_core;
        // Closed form: rate = min(per-core bw, flop_rate / AI).
        let true_ai = tunable::intensity(cursor);
        let flop_rate = spec.flop_rate(2.3, 0);
        let predicted = (flop_rate / true_ai).min(spec.per_core_bw);
        let rel = (measured_bw - predicted).abs() / predicted;
        assert!(
            rel < 0.02,
            "ai {}: measured {} predicted {} ({:+.1} %)",
            true_ai,
            measured_bw,
            predicted,
            rel * 100.0
        );
        // And the roofline helper agrees.
        let t_pred = roofline::phase_time(w.phases[0].flops, true_ai, flop_rate, spec.per_core_bw);
        let t_meas = w.phases[0].bytes / measured_bw;
        assert!((t_pred - t_meas).abs() / t_pred < 0.02);
    }
}

/// The real STREAM TRIAD and its descriptor agree on byte/flop accounting.
#[test]
fn real_kernels_match_descriptors() {
    let n = 10_000;
    let w = stream::workload(stream::StreamKernel::Triad, n, NumaId(0), 1);
    assert_eq!(w.total_bytes(), (n * 24) as f64);
    assert_eq!(w.total_flops(), (n * 2) as f64);

    // Tunable kernel with cursor c: 2c flops per element.
    let c = 7;
    let wt = tunable::workload(n, c, NumaId(0), 1);
    assert_eq!(wt.total_flops(), (n as f64) * 2.0 * c as f64);
    // And the real kernel really does c dependent FMAs per element.
    let expect = tunable::triad_cursor_reference(1.0, 1.0, 1.0, c);
    assert_eq!(expect, 1.0 + c as f64);
}

/// The engine's two-node fabric is symmetric: a 1→0 ping-pong measures the
/// same as 0→1.
#[test]
fn fabric_is_symmetric() {
    let mut c = Cluster::new(
        &henri(),
        Governor::Userspace(2.3),
        UncorePolicy::Fixed(2.4),
        near_near(),
    );
    // Direction 0→1 (as used by the benchmark).
    let fwd = pingpong::run(&mut c, PingPongConfig::latency(4)).median_latency_us();
    // Manual reverse direction.
    let t0 = c.engine.now();
    let reps = 4;
    for i in 0..reps {
        let r = c.irecv(0, 100 + i);
        c.isend(1, 4, 100 + i, 0x9000);
        while !c.test_recv(r) {
            c.step().expect("progress");
        }
        let r = c.irecv(1, 200 + i);
        c.isend(0, 4, 200 + i, 0x9001);
        while !c.test_recv(r) {
            c.step().expect("progress");
        }
    }
    let rev = (c.engine.now() - t0).as_micros_f64() / (reps as f64 * 2.0);
    assert!(
        (rev - fwd).abs() / fwd < 0.05,
        "forward {} µs vs reverse {} µs",
        fwd,
        rev
    );
}

/// Pausing and resuming workers round-trips: latency with resumed pollers
/// returns to the polling level.
#[test]
fn worker_pause_resume_roundtrip() {
    let mut c = Cluster::new(
        &henri(),
        Governor::Performance { turbo: true },
        UncorePolicy::Auto,
        near_near(),
    );
    let mut cfg = taskrt::RuntimeConfig::for_machine(&c.spec);
    cfg.backoff_max_nops = 2; // aggressive so the effect is visible
    let mut rt = taskrt::Runtime::new(cfg);
    let cores: Vec<CoreId> = c.compute_cores();
    rt.attach_workers(&mut c, 0, &cores.clone());
    rt.attach_workers(&mut c, 1, &cores);
    let pp = PingPongConfig::latency(4);
    let polling1 = taskrt::pingpong::run(&mut c, &mut rt, pp).median_latency_us();
    rt.pause_workers(&mut c, 0);
    rt.pause_workers(&mut c, 1);
    let paused = taskrt::pingpong::run(&mut c, &mut rt, pp).median_latency_us();
    rt.resume_workers(&mut c, 0);
    rt.resume_workers(&mut c, 1);
    let polling2 = taskrt::pingpong::run(&mut c, &mut rt, pp).median_latency_us();
    assert!(paused < polling1, "paused {} vs polling {}", paused, polling1);
    assert!(
        (polling2 - polling1).abs() / polling1 < 0.05,
        "resume did not restore: {} vs {}",
        polling2,
        polling1
    );
}
