//! Tier-2 chaos: injected result-store corruption must always be detected
//! and recomputed — a corrupt entry is never served, under any fault
//! shape, and a resumed campaign over a damaged store still renders
//! byte-identical figures.

use interference::campaign::{self, CampaignOptions, StoreCtx};
use interference::experiments::{self, Fidelity};
use interference::results::figures_to_json;
use interference::store::chaos::{corrupt_file, Fault};
use interference::store::{Lookup, ResultStore};

fn temp_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!("ifchaos-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ResultStore::open(dir).expect("open temp store")
}

/// The fault matrix applied in the campaign-level test below: every chaos
/// shape the injector knows, at several offsets.
fn fault_matrix() -> Vec<Fault> {
    vec![
        Fault::Truncate(0),
        Fault::Truncate(1),
        Fault::Truncate(9),
        Fault::BitFlip { offset: 0, bit: 0 },
        Fault::BitFlip { offset: 5, bit: 7 },
        Fault::BitFlip { offset: 40, bit: 3 },
        Fault::TornTail { keep: 12 },
        Fault::Zeroed { len: 64 },
    ]
}

/// Store level: a verified put/get roundtrip, then every fault shape in
/// turn — each one must quarantine, never serve, and leave the slot
/// recomputable (a fresh put works and is served again).
#[test]
fn every_fault_shape_is_detected_and_recomputable() {
    let store = temp_store("matrix");
    for (i, fault) in fault_matrix().into_iter().enumerate() {
        let key = format!("entry-{}", i);
        let payload = vec![i as u8; 48 + i];
        store.put(&key, &payload).expect("put");
        assert_eq!(store.get(&key), Lookup::Hit(payload.clone()), "pre-fault");
        corrupt_file(&store.entry_path(&key), fault);
        match store.get(&key) {
            Lookup::Hit(_) => panic!("fault {:?} was served", fault),
            Lookup::Quarantined(q) => {
                assert!(q.exists(), "quarantine file kept for post-mortem");
                assert_eq!(q.extension().unwrap(), "quarantined");
            }
            // Truncate(0) leaves an empty file — also fine if reported
            // quarantined; either way the entry must be gone below.
            Lookup::Miss => {}
        }
        // The slot is clean again: recompute (put) and serve.
        assert!(matches!(store.get(&key), Lookup::Miss), "entry cleared");
        store.put(&key, &payload).expect("re-put");
        assert_eq!(store.get(&key), Lookup::Hit(payload), "recomputed entry serves");
    }
    assert!(store.stats().quarantined >= 6, "faults were quarantined");
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Campaign level: persist a campaign, hit every entry with a fault from
/// the matrix, resume — all damage is detected (nothing restored from a
/// corrupt entry), everything recomputes, and the figures are
/// byte-identical to a clean run.
#[test]
fn fully_corrupted_store_recomputes_to_identical_figures() {
    let exp = experiments::find("fig4").expect("registered");
    let opts = CampaignOptions::serial(Fidelity::Quick);
    let clean = figures_to_json(
        &campaign::run_set(&[exp], &opts)
            .iter()
            .flat_map(|r| r.figures.clone())
            .collect::<Vec<_>>(),
    );

    let store = temp_store("campaign");
    let ctx = StoreCtx { store: &store, resume: true };
    campaign::run_set_with_store(&[exp], &opts, Some(ctx));
    let entries: Vec<_> = std::fs::read_dir(store.dir())
        .expect("read store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "res"))
        .collect();
    assert!(!entries.is_empty());
    let faults = fault_matrix();
    for (i, p) in entries.iter().enumerate() {
        corrupt_file(p, faults[i % faults.len()]);
    }

    let (runs, _) = campaign::run_set_with_store(&[exp], &opts, Some(ctx));
    assert_eq!(runs[0].restored_points, 0, "no corrupt entry was served");
    assert_eq!(runs[0].failed_points, 0);
    let resumed = figures_to_json(
        &runs.iter().flat_map(|r| r.figures.clone()).collect::<Vec<_>>(),
    );
    assert_eq!(clean, resumed, "figures diverged after store corruption");

    // The recomputed entries are durable again: a further resume restores.
    let (runs2, _) = campaign::run_set_with_store(&[exp], &opts, Some(ctx));
    assert_eq!(runs2[0].restored_points, runs2[0].points);
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Torn temp files from a killed writer are reaped on open and never
/// surface as entries.
#[test]
fn orphaned_temp_files_are_reaped_on_open() {
    let store = temp_store("orphans");
    store.put("alive", b"payload").expect("put");
    let orphan = store.dir().join(".deadbeef.res.tmp-999-7");
    std::fs::write(&orphan, b"torn half-write").expect("plant orphan");
    let dir = store.dir().to_path_buf();
    drop(store);
    let store = ResultStore::open(&dir).expect("reopen");
    assert!(!orphan.exists(), "orphan temp file reaped on open");
    assert_eq!(store.get("alive"), Lookup::Hit(b"payload".to_vec()));
    let _ = std::fs::remove_dir_all(dir);
}
