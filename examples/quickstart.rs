//! Quickstart: measure communication performance alone and beside
//! memory-bound computation on a simulated henri cluster — the paper's
//! headline experiment in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use freq::{Governor, UncorePolicy};
use kernels::stream::{workload, StreamKernel};
use mpisim::pingpong::PingPongConfig;
use simcore::SimTime;
use topology::{henri, Placement};

use interference::protocol::{self, ProtocolConfig};

fn main() {
    let machine = henri();
    println!(
        "machine: {} — {} cores / {} NUMA nodes, NIC on NUMA {:?}",
        machine.name,
        machine.core_count(),
        machine.numa_count(),
        machine.nic_numa
    );

    // STREAM TRIAD on 35 cores, all data on the NIC's NUMA node.
    let stream = workload(StreamKernel::Triad, 2_000_000, machine.near_numa(), 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(stream));
    cfg.governor = Governor::Performance { turbo: true };
    cfg.uncore = UncorePolicy::Auto;
    cfg.placement = Placement::fig4_default();
    cfg.compute_cores = 35;
    cfg.reps = 5;
    cfg.compute_window = SimTime::from_millis(2);

    // Latency (4 B) and bandwidth (64 MiB) ping-pongs.
    println!("\n-- three-step protocol: compute alone / comm alone / together --");
    cfg.pingpong = PingPongConfig::latency(20);
    let lat = protocol::run(&cfg);
    cfg.pingpong = PingPongConfig::bandwidth(3);
    let bw = protocol::run(&cfg);

    let med = |v: &[f64]| simcore::Summary::of(v).median;
    let l_alone = med(&lat.lat_alone());
    let l_tog = med(&lat.lat_together());
    let b_alone = med(&bw.bw_alone());
    let b_tog = med(&bw.bw_together());
    let s_alone = med(&bw.compute_bw_alone());
    let s_tog = med(&bw.compute_bw_together());

    println!("network latency   : {:>8.2} µs alone → {:>8.2} µs beside STREAM (×{:.2})",
        l_alone, l_tog, l_tog / l_alone);
    println!("network bandwidth : {:>8.2} GB/s alone → {:>8.2} GB/s beside STREAM (−{:.0} %)",
        b_alone / 1e9, b_tog / 1e9, (1.0 - b_tog / b_alone) * 100.0);
    println!("STREAM per core   : {:>8.2} GB/s alone → {:>8.2} GB/s beside comm (−{:.0} %)",
        s_alone / 1e9, s_tog / 1e9, (1.0 - s_tog / s_alone) * 100.0);
    println!(
        "\npaper (henri): latency roughly doubles, bandwidth loses ~2/3, STREAM loses ≤25 %"
    );
}
