//! Campaign quickstart: drive the experiment registry directly.
//!
//! Lists every registered experiment (the same registry `repro --list`
//! prints), then runs one figure through the parallel campaign engine and
//! shows its qualitative checks and timing. Because every sweep point's
//! seed derives from (experiment name, point index), the two-worker run
//! below produces byte-identical figures to a serial one.
//!
//! ```text
//! cargo run --release --example campaign_quickstart
//! ```

use interference::campaign::{run_set, CampaignOptions};
use interference::experiments::{self, Fidelity};

fn main() {
    println!("registered experiments:");
    for e in experiments::all_experiments() {
        println!(
            "  {:<18} {:>3} quick / {:>3} full sweep points   {}",
            e.name(),
            e.plan(Fidelity::Quick).len(),
            e.plan(Fidelity::Full).len(),
            e.anchor()
        );
    }
    println!();

    // Run Figure 4 (memory contention) on two workers. fig4, fig5 and
    // table1 share contention points through the campaign's baseline
    // cache, so running them together would be cheaper than separately.
    let exp = experiments::find("fig4").expect("fig4 is registered");
    let opts = CampaignOptions::new(Fidelity::Quick, 2);
    let runs = run_set(&[exp], &opts);
    for run in runs {
        println!(
            "{}: {} point(s), {:.2} s busy, {:.2} points/s",
            run.name,
            run.points,
            run.busy.as_secs_f64(),
            run.points_per_sec()
        );
        for fig in &run.figures {
            println!("  figure {} — {}", fig.id, fig.title);
            for c in &fig.checks {
                println!(
                    "    [{}] {} — {}",
                    if c.pass { "PASS" } else { "FAIL" },
                    c.name,
                    c.detail
                );
            }
        }
    }
}
