//! Trace explorer: record the telemetry journal of a fault-injected
//! rendezvous ping-pong, print its canonical text form, and export a
//! Chrome trace-event file for `chrome://tracing` / <https://ui.perfetto.dev>.
//!
//! The journal is keyed to simulated time only — run this twice and the
//! files are byte-identical, which is exactly what the golden-trace tests
//! in `tests/golden_traces.rs` rely on.
//!
//! ```text
//! cargo run --release --example trace_explorer [OUT.json]
//! ```

use freq::{Governor, UncorePolicy};
use mpisim::pingpong::{self, PingPongConfig};
use mpisim::Cluster;
use simcore::telemetry;
use simcore::{FaultPlan, SimTime};
use topology::{henri, BindingPolicy, Placement};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_pingpong.json".into());

    telemetry::install();
    let mut c = Cluster::new(
        &henri(),
        Governor::Userspace(2.3),
        UncorePolicy::Fixed(2.4),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    );
    // A lossy fabric makes the trace interesting: dropped CTS packets show
    // up as instants, and the RTS retransmission timer fires visibly.
    c.apply_faults(&FaultPlan::new(7).with_cts_drop(0.5))
        .expect("valid fault plan");
    c.set_time_budget(Some(SimTime::SEC * 5));
    let res = pingpong::try_run(
        &mut c,
        PingPongConfig {
            size: 4 << 20,
            reps: 2,
            warmup: 1,
            mtag: 0xE0,
        },
    )
    .expect("run completes inside the time budget");
    drop(c); // close the engine.run span
    let journal = telemetry::take().expect("recorder installed");

    println!("== canonical journal text (the golden-trace format) ==");
    print!("{}", journal.to_text());
    println!();
    println!("== summary ==");
    println!("   {} records, {:.3} ms simulated", journal.records.len(),
        journal.end_time().as_secs_f64() * 1e3);
    for r in &res.half_rtts {
        println!("   half-rtt sample: {:.2} us", r.as_micros_f64());
    }
    for (name, value) in &journal.counters {
        println!("   counter {:<16} {}", name, value);
    }

    std::fs::write(&out, journal.to_chrome_json()).expect("write trace");
    println!();
    println!(
        "Chrome trace written to {} — open chrome://tracing or https://ui.perfetto.dev",
        out
    );
}
