//! Distributed use-cases on the task runtime: dense CG vs GEMM over two
//! ranks (§6, Figure 10), plus the paper's future-work idea — automatic
//! worker-count selection — implemented as `taskrt::programs::autotune`.
//!
//! ```text
//! cargo run --release --example distributed_usecases
//! ```

use freq::{Governor, UncorePolicy};
use mpisim::Cluster;
use taskrt::programs::{self, UseCaseConfig};
use taskrt::{Runtime, RuntimeConfig};
use topology::{henri, Placement};

fn fresh_cluster() -> Cluster {
    Cluster::new(
        &henri(),
        Governor::Performance { turbo: true },
        UncorePolicy::Auto,
        Placement::fig4_default(),
    )
}

fn main() {
    // The real solvers the distributed programs model:
    let mut rng = simcore::Pcg32::new(42, 0);
    let n = 48;
    let a = kernels::cg::random_spd(n, &mut rng);
    let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let sol = kernels::cg::solve(&a, &b, 1e-10, 10 * n);
    println!(
        "real CG sanity: {}x{} SPD system solved in {} iterations, residual {:.2e}\n",
        n, n, sol.iterations, sol.residual
    );

    println!(
        "{:>8} {:>18} {:>14} {:>18} {:>14}",
        "workers", "CG send bw", "CG stalls", "GEMM send bw", "GEMM stalls"
    );
    let mut cg_base = None;
    let mut gemm_base = None;
    for &w in &[1usize, 4, 8, 16, 25, 35] {
        let run = |cfg: UseCaseConfig| {
            let mut cluster = fresh_cluster();
            let mut rt = Runtime::new(RuntimeConfig::for_machine(&cluster.spec));
            programs::attach_n_workers(&mut cluster, &mut rt, cfg.workers);
            programs::run(&mut cluster, &mut rt, cfg)
        };
        let cg = run(UseCaseConfig::cg(w, 2));
        let gemm = run(UseCaseConfig::gemm(w, 2));
        let cg_b = *cg_base.get_or_insert(cg.mean_send_bw);
        let gemm_b = *gemm_base.get_or_insert(gemm.mean_send_bw);
        println!(
            "{:>8} {:>11.2} GB/s ({:>3.0}%) {:>9.0} % {:>11.2} GB/s ({:>3.0}%) {:>9.0} %",
            w,
            cg.mean_send_bw / 1e9,
            cg.mean_send_bw / cg_b * 100.0,
            cg.stall_fraction * 100.0,
            gemm.mean_send_bw / 1e9,
            gemm.mean_send_bw / gemm_b * 100.0,
            gemm.stall_fraction * 100.0,
        );
    }
    println!("\npaper: CG loses up to 90 % of sending bandwidth (70 % memory stalls),");
    println!("       GEMM at most ~20 % (20 % stalls).");

    // Future-work extension: pick the worker count balancing compute
    // throughput against communication health.
    let (best, scores) = programs::autotune_workers(
        fresh_cluster,
        |w| UseCaseConfig::cg(w, 1),
        &[4, 8, 16, 25, 35],
    );
    println!("\nautotuned CG worker count: {} (scores: {:?})", best, scores);
}
