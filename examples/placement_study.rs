//! Placement study: how data locality and communication-thread binding
//! change interference (the paper's §4.3 / Table 1), across all four
//! cluster presets.
//!
//! ```text
//! cargo run --release --example placement_study
//! ```

use kernels::stream::{workload, StreamKernel};
use mpisim::pingpong::PingPongConfig;
use topology::{BindingPolicy, Placement, Preset};

use interference::protocol::{self, ProtocolConfig};

fn main() {
    for preset in [Preset::Henri, Preset::Bora] {
        let machine = preset.spec();
        let full = machine.core_count() as usize - 1;
        println!(
            "\n=== {} ({} cores, {} NUMA nodes) — {} computing cores ===",
            machine.name,
            machine.core_count(),
            machine.numa_count(),
            full
        );
        println!(
            "{:<28} {:>12} {:>12} {:>14} {:>14}",
            "placement", "lat alone", "lat together", "bw alone", "bw together"
        );
        for (label, placement) in Placement::all_combinations() {
            let data = match placement.data {
                BindingPolicy::NearNic => machine.near_numa(),
                BindingPolicy::FarFromNic => machine.far_numa(),
                BindingPolicy::Numa(n) => n,
            };
            let stream = workload(StreamKernel::Triad, 2_000_000, data, 1);
            let mut cfg = ProtocolConfig::new(machine.clone(), Some(stream));
            cfg.placement = placement;
            cfg.compute_cores = full;
            cfg.reps = 3;

            cfg.pingpong = PingPongConfig::latency(10);
            let lat = protocol::run(&cfg);
            cfg.pingpong = PingPongConfig::bandwidth(2);
            let bw = protocol::run(&cfg);

            let med = |v: &[f64]| simcore::Summary::of(v).median;
            println!(
                "{:<28} {:>9.2} µs {:>9.2} µs {:>9.2} GB/s {:>9.2} GB/s",
                label,
                med(&lat.lat_alone()),
                med(&lat.lat_together()),
                med(&bw.bw_alone()) / 1e9,
                med(&bw.bw_together()) / 1e9,
            );
        }
    }
    println!("\npaper: thread far → latency suffers; data far → bandwidth suffers.");
}
