//! Frequency laboratory: pin core and uncore frequencies and observe their
//! separate effects on communication (§3, Figure 1), then watch the turbo
//! ladders and AVX licensing in action (Figures 2–3).
//!
//! ```text
//! cargo run --release --example frequency_lab
//! ```

use freq::{Activity, FreqModel, Governor, License, UncorePolicy};
use mpisim::pingpong::{self, PingPongConfig};
use mpisim::Cluster;
use topology::{henri, BindingPolicy, CoreId, Placement};

fn cluster(gov: Governor, uncore: UncorePolicy) -> Cluster {
    Cluster::new(
        &henri(),
        gov,
        uncore,
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    )
}

fn main() {
    println!("-- constant frequencies (userspace governor), ping-pong only --");
    println!(
        "{:>10} {:>10} {:>12} {:>14}",
        "core GHz", "uncore", "4B latency", "64MiB bandwidth"
    );
    for (core, uncore) in [(2.3, 2.4), (1.0, 2.4), (2.3, 1.2), (1.0, 1.2)] {
        let mut c = cluster(Governor::Userspace(core), UncorePolicy::Fixed(uncore));
        let lat = pingpong::run(&mut c, PingPongConfig::latency(10)).median_latency_us();
        let bw = pingpong::run(&mut c, PingPongConfig::bandwidth(2)).median_bandwidth();
        println!(
            "{:>10.1} {:>10.1} {:>9.2} µs {:>11.2} GB/s",
            core,
            uncore,
            lat,
            bw / 1e9
        );
    }
    println!("paper: 1.8 µs at 2.3 GHz vs 3.1 µs at 1 GHz; 10.5 vs 10.1 GB/s across uncore.\n");

    println!("-- turbo ladder and AVX licensing (freq model direct) --");
    let spec = henri();
    let mut model = FreqModel::new(
        &spec,
        Governor::Performance { turbo: true },
        UncorePolicy::Auto,
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10}",
        "active cores", "normal", "AVX2", "AVX512"
    );
    for n in [1u32, 4, 8, 12, 16, 18] {
        let mut freqs = [0.0; 3];
        for (i, lic) in [License::Normal, License::Avx2, License::Avx512]
            .into_iter()
            .enumerate()
        {
            for c in 0..18 {
                model.set_activity(CoreId(c), Activity::Idle);
            }
            for c in 0..n {
                model.set_activity(CoreId(c), Activity::Heavy(lic));
            }
            freqs[i] = model.core_freq(CoreId(0));
        }
        println!(
            "{:>14} {:>9.1}G {:>9.1}G {:>9.1}G",
            n, freqs[0], freqs[1], freqs[2]
        );
    }
    println!("\npaper Fig 3: 4 AVX512 cores → 3.0 GHz, 20 → 2.3 GHz; comm core pinned ~2.5 GHz.");

    // And the real FMA burn kernel behind the AVX descriptors.
    let acc = kernels::vecops::fma_burn(100_000);
    println!("real FMA burn sanity: accumulator = {:.6}", acc);
}
