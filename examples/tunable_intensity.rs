//! Tunable arithmetic intensity: walk an application from memory-bound to
//! CPU-bound and watch the interference with communications fade (§4.5,
//! Figure 7). Also demonstrates the *real* tunable kernel and the roofline
//! helpers agreeing with the simulation.
//!
//! ```text
//! cargo run --release --example tunable_intensity
//! ```

use kernels::{roofline, tunable};
use mpisim::pingpong::PingPongConfig;
use topology::{henri, Placement};

use interference::protocol::{self, ProtocolConfig};

fn main() {
    let machine = henri();
    let cores = 35;

    // Where does the roofline say the crossover should be?
    let predicted = roofline::contended_balance(&machine, 2.5, 0, cores as u32);
    println!(
        "roofline prediction: {} computing cores become CPU-bound above ~{:.1} flop/B\n",
        cores, predicted
    );

    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>14} {:>14}",
        "cursor", "flop/B", "lat alone", "lat both", "bw alone", "bw both"
    );
    for cursor in [1u32, 8, 24, 72, 144, 480] {
        let w = tunable::workload(1_000_000, cursor, machine.near_numa(), 1);
        let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
        cfg.placement = Placement::fig4_default();
        cfg.compute_cores = cores;
        cfg.reps = 3;

        cfg.pingpong = PingPongConfig::latency(10);
        let lat = protocol::run(&cfg);
        cfg.pingpong = PingPongConfig::bandwidth(2);
        let bw = protocol::run(&cfg);

        let med = |v: &[f64]| simcore::Summary::of(v).median;
        println!(
            "{:>10} {:>8.2} {:>9.2} µs {:>9.2} µs {:>9.2} GB/s {:>9.2} GB/s",
            cursor,
            tunable::intensity(cursor),
            med(&lat.lat_alone()),
            med(&lat.lat_together()),
            med(&bw.bw_alone()) / 1e9,
            med(&bw.bw_together()) / 1e9,
        );
    }

    // The real kernel the descriptor is derived from.
    let a = [2.0f64; 8];
    let b = [3.0f64; 8];
    let mut c = [0.0f64; 8];
    tunable::triad_cursor(&a, &b, 0.5, &mut c, 4);
    println!(
        "\nreal kernel sanity: triad_cursor(2, 3, ×0.5, cursor 4) = {} (expect {})",
        c[0],
        tunable::triad_cursor_reference(2.0, 3.0, 0.5, 4)
    );
    println!("paper: below ~6 flop/B latency doubles and bandwidth drops ~60 % on henri.");
}
