//! Fault injection: the paper's bandwidth ping-pong on a degraded link,
//! with rendezvous control-message drops and a crash-proof campaign.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```
//!
//! The healthy figures assume a perfect fabric. This example injects the
//! three fault classes the robustness extension models — a link-bandwidth
//! degradation window, dropped clear-to-send control messages, and a
//! straggler core — and shows how the three-step protocol and the
//! crash-proof runner report them.

use mpisim::pingpong::PingPongConfig;
use simcore::{FaultPlan, SimTime, Summary};
use topology::henri;

use interference::protocol::{self, ProtocolConfig};
use interference::runner;

fn main() {
    let machine = henri();
    let mut cfg = ProtocolConfig::new(machine, None);
    cfg.reps = 5;
    cfg.pingpong = PingPongConfig::bandwidth(3);

    // Healthy baseline.
    let healthy = protocol::run(&cfg);
    let med = |v: &[f64]| Summary::of(v).median;
    let bw0 = med(&healthy.bw_alone());
    println!("healthy fabric      : {:>6.2} GB/s", bw0 / 1e9);

    // The wire degraded to 40 % of nominal for the first 10 s of every
    // repetition — long enough to cover the whole measurement.
    let degraded_plan = FaultPlan::new(cfg.seed).with_link_degradation(
        SimTime::ZERO,
        SimTime::SEC * 10,
        0.40,
    );
    let degraded = protocol::try_run_faulted(&cfg, &degraded_plan).expect("degraded run");
    let bw1 = med(&degraded.bw_alone());
    println!(
        "link at 40 %        : {:>6.2} GB/s (−{:.0} %)",
        bw1 / 1e9,
        (1.0 - bw1 / bw0) * 100.0
    );

    // Rendezvous CTS drops: each loss costs the sender one retransmission
    // timeout; the per-send profiler records the retry work.
    let mut lossy_cfg = cfg.clone();
    lossy_cfg.pingpong = PingPongConfig {
        size: 256 * 1024,
        reps: 10,
        warmup: 2,
        mtag: 0xFA,
    };
    let lossy_plan = FaultPlan::new(cfg.seed).with_cts_drop(0.3);
    let lossy = protocol::try_run_faulted(&lossy_cfg, &lossy_plan).expect("lossy run");
    let retries: u64 = lossy.comm_alone.iter().map(|m| m.comm_retries).sum();
    let retrans: u64 = lossy.comm_alone.iter().map(|m| m.comm_retrans_bytes).sum();
    println!(
        "30 % CTS drops      : {} retransmissions, {} control bytes re-sent",
        retries, retrans
    );

    // A crash-proof campaign: one repetition runs under a total black-out
    // and fails after exhausting its retries; the rest still produce bands.
    let blackout = FaultPlan::new(cfg.seed).with_cts_drop(1.0);
    let campaign = runner::run_campaign(4, cfg.seed, |rep, seed| {
        let mut c = lossy_cfg.clone();
        c.seed = seed;
        let plan = if rep == 2 { &blackout } else { &lossy_plan };
        let plan = FaultPlan { seed, ..plan.clone() };
        protocol::try_run_faulted(&c, &plan).map(|r| med(&r.lat_alone()))
    });
    println!("\ncrash-proof campaign (rep 2 under total CTS black-out):");
    for rec in &campaign.records {
        println!(
            "  rep {} [{}]{}",
            rec.rep,
            rec.status.label(),
            rec.status
                .error()
                .map(|e| format!(" — {}", e))
                .unwrap_or_default()
        );
    }
    let survivors: Vec<f64> = campaign.values.iter().map(|&(_, v)| v).collect();
    let bands = Summary::of(&survivors);
    println!(
        "  bands from {} of {} reps: median {:.1} µs [{:.1}, {:.1}]",
        bands.n,
        campaign.records.len(),
        bands.median,
        bands.d1,
        bands.d9
    );
    assert!(campaign.is_partial() && bands.n == 3);
}
